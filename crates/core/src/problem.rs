//! Cardinality goals and problem classification (§3.1.3).
//!
//! A user declares what result size would be *expected*; comparing the
//! actual cardinality against the goal classifies the situation into one of
//! the cardinality-based why-problems. During rewriting the result size can
//! oscillate around the threshold (Fig. 3.1) — the engine re-classifies
//! after every executed candidate and adapts the search direction.

/// The user's expectation about the result size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CardinalityGoal {
    /// At least one answer (the why-empty setting; no threshold given).
    NonEmpty,
    /// At least `C_thr` answers.
    AtLeast(u64),
    /// At most `C_thr` answers (and at least one).
    AtMost(u64),
    /// Between `lo` and `hi` answers inclusive.
    Between(u64, u64),
}

impl CardinalityGoal {
    /// Does a result size satisfy the goal?
    pub fn satisfied(&self, c: u64) -> bool {
        match *self {
            CardinalityGoal::NonEmpty => c > 0,
            CardinalityGoal::AtLeast(t) => c >= t,
            CardinalityGoal::AtMost(t) => c > 0 && c <= t,
            CardinalityGoal::Between(lo, hi) => c >= lo && c <= hi,
        }
    }

    /// Classify the why-problem for a result size (Fig. 3.1).
    pub fn classify(&self, c: u64) -> WhyProblem {
        if c == 0 {
            return if self.satisfied(0) {
                WhyProblem::Satisfied
            } else {
                WhyProblem::WhyEmpty
            };
        }
        match *self {
            CardinalityGoal::NonEmpty => WhyProblem::Satisfied,
            CardinalityGoal::AtLeast(t) => {
                if c >= t {
                    WhyProblem::Satisfied
                } else {
                    WhyProblem::WhySoFew
                }
            }
            CardinalityGoal::AtMost(t) => {
                if c <= t {
                    WhyProblem::Satisfied
                } else {
                    WhyProblem::WhySoMany
                }
            }
            CardinalityGoal::Between(lo, hi) => {
                if c < lo {
                    WhyProblem::WhySoFew
                } else if c > hi {
                    WhyProblem::WhySoMany
                } else {
                    WhyProblem::Satisfied
                }
            }
        }
    }

    /// The deviation `|C_thr − C|` minimized by cardinality-driven search;
    /// zero when the goal is met. For intervals the nearest bound counts.
    pub fn deviation(&self, c: u64) -> u64 {
        match *self {
            CardinalityGoal::NonEmpty => u64::from(c == 0),
            CardinalityGoal::AtLeast(t) => t.saturating_sub(c),
            CardinalityGoal::AtMost(t) => {
                if c == 0 {
                    // empty is unexpected for "at most" too — maximally off
                    t.max(1)
                } else {
                    c.saturating_sub(t)
                }
            }
            CardinalityGoal::Between(lo, hi) => {
                if c < lo {
                    lo - c
                } else {
                    c.saturating_sub(hi)
                }
            }
        }
    }

    /// A representative threshold (used by reports and by BOUNDEDMCS).
    pub fn threshold(&self) -> u64 {
        match *self {
            CardinalityGoal::NonEmpty => 1,
            CardinalityGoal::AtLeast(t) | CardinalityGoal::AtMost(t) => t,
            CardinalityGoal::Between(lo, hi) => (lo + hi) / 2,
        }
    }
}

/// The cardinality-based why-problems of the thesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WhyProblem {
    /// Result size meets the expectation — nothing to explain.
    Satisfied,
    /// Empty result (why-empty query, Ch. 4/5).
    WhyEmpty,
    /// Fewer answers than expected (why-so-few, Ch. 4/6).
    WhySoFew,
    /// More answers than expected (why-so-many, Ch. 4/6).
    WhySoMany,
}

impl std::fmt::Display for WhyProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WhyProblem::Satisfied => "satisfied",
            WhyProblem::WhyEmpty => "why-empty",
            WhyProblem::WhySoFew => "why-so-few",
            WhyProblem::WhySoMany => "why-so-many",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(CardinalityGoal::NonEmpty.classify(0), WhyProblem::WhyEmpty);
        assert_eq!(CardinalityGoal::NonEmpty.classify(3), WhyProblem::Satisfied);
        assert_eq!(
            CardinalityGoal::AtLeast(10).classify(3),
            WhyProblem::WhySoFew
        );
        assert_eq!(
            CardinalityGoal::AtMost(10).classify(30),
            WhyProblem::WhySoMany
        );
        assert_eq!(
            CardinalityGoal::AtMost(10).classify(0),
            WhyProblem::WhyEmpty
        );
        assert_eq!(
            CardinalityGoal::Between(5, 10).classify(7),
            WhyProblem::Satisfied
        );
        assert_eq!(
            CardinalityGoal::Between(5, 10).classify(2),
            WhyProblem::WhySoFew
        );
        assert_eq!(
            CardinalityGoal::Between(5, 10).classify(20),
            WhyProblem::WhySoMany
        );
    }

    #[test]
    fn satisfaction() {
        assert!(CardinalityGoal::NonEmpty.satisfied(1));
        assert!(!CardinalityGoal::NonEmpty.satisfied(0));
        assert!(CardinalityGoal::AtMost(5).satisfied(5));
        assert!(!CardinalityGoal::AtMost(5).satisfied(0));
        assert!(CardinalityGoal::Between(2, 4).satisfied(3));
    }

    #[test]
    fn deviations() {
        assert_eq!(CardinalityGoal::AtLeast(10).deviation(4), 6);
        assert_eq!(CardinalityGoal::AtLeast(10).deviation(15), 0);
        assert_eq!(CardinalityGoal::AtMost(10).deviation(25), 15);
        assert_eq!(CardinalityGoal::Between(5, 10).deviation(2), 3);
        assert_eq!(CardinalityGoal::Between(5, 10).deviation(13), 3);
        assert_eq!(CardinalityGoal::Between(5, 10).deviation(7), 0);
        assert_eq!(CardinalityGoal::NonEmpty.deviation(0), 1);
        assert_eq!(CardinalityGoal::NonEmpty.deviation(9), 0);
    }
}
