//! Priority functions of the query-candidate selector (§5.3, §5.5.1).
//!
//! The rewriter pops the candidate with the highest priority from the
//! frontier. The thesis evaluates several priority functions; higher score
//! = executed earlier:
//!
//! * [`PriorityFn::Random`] — baseline: deterministic pseudo-random order;
//! * [`PriorityFn::MinSyntactic`] — prefer candidates closest to the
//!   original query (pure syntactic closeness, no statistics);
//! * [`PriorityFn::EstimatedCardinality`] — prefer candidates whose
//!   statistics-based estimate promises the most results (§5.2);
//! * [`PriorityFn::AvgPath1`] — prefer candidates with a high average
//!   `path(1)` cardinality (§5.5.3);
//! * [`PriorityFn::InducedChange`] — prefer relaxations inducing the
//!   largest estimated cardinality *gain* over their parent (§5.3.2);
//! * [`PriorityFn::Path1PlusInduced`] — the §5.5.3 combination of the two.

use crate::stats::Statistics;
use std::hash::{Hash, Hasher};
use whyq_metrics::syntactic_distance;
use whyq_query::{signature::signature, PatternQuery};

/// A candidate priority function (higher score = execute earlier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityFn {
    /// Deterministic pseudo-random order from the given seed.
    Random(u64),
    /// Negative syntactic distance to the original query.
    MinSyntactic,
    /// Statistics-based cardinality estimate of the candidate.
    EstimatedCardinality,
    /// Average `path(1)` cardinality over the candidate's edges.
    AvgPath1,
    /// Estimated cardinality change induced by the relaxation (§5.3.2).
    InducedChange,
    /// `AvgPath1 + max(InducedChange, 0)` (§5.5.3).
    Path1PlusInduced,
    /// `paths(n)`-based chain-join estimate (§5.2.3): highest estimated
    /// cardinality first.
    PathsN,
}

impl PriorityFn {
    /// Human-readable name used in evaluation tables.
    pub fn name(&self) -> &'static str {
        match self {
            PriorityFn::Random(_) => "random",
            PriorityFn::MinSyntactic => "min-syntactic",
            PriorityFn::EstimatedCardinality => "est-cardinality",
            PriorityFn::AvgPath1 => "avg-path1",
            PriorityFn::InducedChange => "induced-change",
            PriorityFn::Path1PlusInduced => "path1+induced",
            PriorityFn::PathsN => "paths-n",
        }
    }

    /// Score a candidate generated from `parent` at relaxation `depth`.
    ///
    /// `MinSyntactic` measures against the *parent's root*: because every
    /// relaxation strictly grows the distance to the original query, the
    /// candidate's own distance to its parent plus depth is a faithful
    /// proxy; we measure directly against the parent chain's origin by
    /// penalizing depth.
    pub fn score(
        &self,
        candidate: &PatternQuery,
        parent: &PatternQuery,
        stats: &Statistics<'_>,
        depth: usize,
    ) -> f64 {
        match self {
            PriorityFn::Random(seed) => {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                seed.hash(&mut h);
                signature(candidate).hash(&mut h);
                (h.finish() % 1_000_000) as f64 / 1_000_000.0
            }
            PriorityFn::MinSyntactic => -(syntactic_distance(parent, candidate) + depth as f64),
            PriorityFn::EstimatedCardinality => stats.estimate(candidate) as f64,
            PriorityFn::AvgPath1 => stats.avg_path1(candidate),
            PriorityFn::InducedChange => stats.induced_change(parent, candidate) as f64,
            PriorityFn::Path1PlusInduced => {
                let induced = stats.induced_change(parent, candidate) as f64;
                stats.avg_path1(candidate) + induced.max(0.0)
            }
            PriorityFn::PathsN => stats.estimate_paths(candidate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::{PropertyGraph, Value};
    use whyq_query::{GraphMod, Predicate, QueryBuilder, Target};

    fn setup() -> (whyq_session::Database, PatternQuery) {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([
            ("type", Value::str("city")),
            ("name", Value::str("Dresden")),
        ]);
        g.add_edge(a, b, "livesIn", []);
        let q = QueryBuilder::new("q")
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex(
                "c",
                [
                    Predicate::eq("type", "city"),
                    Predicate::eq("name", "Berlin"),
                ],
            )
            .edge("p", "c", "livesIn")
            .build();
        (whyq_session::Database::open(g).expect("open"), q)
    }

    #[test]
    fn induced_change_rewards_fixing_the_failure() {
        let (db, q) = setup();
        let stats = Statistics::new(&db);
        // removing the failing name predicate raises the estimate
        let fix = GraphMod::RemovePredicate {
            target: Target::Vertex(whyq_query::QVid(1)),
            attr: "name".into(),
        };
        let (fixed, _) = fix.applied(&q).unwrap();
        // removing the innocent person type predicate does not
        let noop = GraphMod::RemovePredicate {
            target: Target::Vertex(whyq_query::QVid(0)),
            attr: "type".into(),
        };
        let (unfixed, _) = noop.applied(&q).unwrap();
        let p = PriorityFn::InducedChange;
        assert!(p.score(&fixed, &q, &stats, 0) > p.score(&unfixed, &q, &stats, 0));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let (db, q) = setup();
        let stats = Statistics::new(&db);
        let a = PriorityFn::Random(1).score(&q, &q, &stats, 0);
        let b = PriorityFn::Random(1).score(&q, &q, &stats, 0);
        let c = PriorityFn::Random(2).score(&q, &q, &stats, 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn min_syntactic_prefers_shallow_candidates() {
        let (db, q) = setup();
        let stats = Statistics::new(&db);
        let m = GraphMod::RemovePredicate {
            target: Target::Vertex(whyq_query::QVid(1)),
            attr: "name".into(),
        };
        let (child, _) = m.applied(&q).unwrap();
        let shallow = PriorityFn::MinSyntactic.score(&child, &q, &stats, 0);
        let deep = PriorityFn::MinSyntactic.score(&child, &q, &stats, 3);
        assert!(shallow > deep);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PriorityFn::Path1PlusInduced.name(), "path1+induced");
        assert_eq!(PriorityFn::Random(7).name(), "random");
    }
}
