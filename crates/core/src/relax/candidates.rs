//! Coarse-grained relaxation candidates (§5.1.2, §5.3.1).
//!
//! The coarse rewriter discards whole constraints: an attribute predicate,
//! a query edge, or a query vertex (with its incident edges). Value-level
//! changes are the business of the fine-grained rewriter (Ch. 6).

use whyq_query::{GraphMod, PatternQuery, Target};

/// Every applicable single-step coarse relaxation of `q`, in deterministic
/// order (vertex predicates, edge predicates, edges, vertices).
pub fn coarse_relaxations(q: &PatternQuery) -> Vec<GraphMod> {
    let mut out = Vec::new();
    for v in q.vertex_ids() {
        let vx = q.vertex(v).expect("live");
        for p in &vx.predicates {
            out.push(GraphMod::RemovePredicate {
                target: Target::Vertex(v),
                attr: p.attr.clone(),
            });
        }
    }
    for e in q.edge_ids() {
        let ed = q.edge(e).expect("live");
        for p in &ed.predicates {
            out.push(GraphMod::RemovePredicate {
                target: Target::Edge(e),
                attr: p.attr.clone(),
            });
        }
    }
    for e in q.edge_ids() {
        out.push(GraphMod::RemoveEdge(e));
    }
    if q.num_vertices() > 1 {
        for v in q.vertex_ids() {
            out.push(GraphMod::RemoveVertex(v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_query::{Predicate, QueryBuilder};

    #[test]
    fn generates_all_constraint_discards() {
        let q = QueryBuilder::new("q")
            .vertex(
                "a",
                [Predicate::eq("type", "person"), Predicate::eq("age", 30)],
            )
            .vertex("b", [Predicate::eq("type", "city")])
            .edge_full(
                "a",
                "b",
                "livesIn",
                whyq_query::DirectionSet::FORWARD,
                [Predicate::eq("since", 2000)],
            )
            .build();
        let mods = coarse_relaxations(&q);
        // 3 vertex predicates + 1 edge predicate + 1 edge + 2 vertices
        assert_eq!(mods.len(), 7);
        let removals = mods
            .iter()
            .filter(|m| matches!(m, GraphMod::RemovePredicate { .. }))
            .count();
        assert_eq!(removals, 4);
    }

    #[test]
    fn single_vertex_query_keeps_its_vertex() {
        let q = QueryBuilder::new("v")
            .vertex("a", [Predicate::eq("type", "person")])
            .build();
        let mods = coarse_relaxations(&q);
        assert!(mods.iter().all(|m| !matches!(m, GraphMod::RemoveVertex(_))));
        assert_eq!(mods.len(), 1);
    }

    #[test]
    fn all_candidates_apply_cleanly() {
        let q = QueryBuilder::new("q")
            .vertex("a", [Predicate::eq("type", "person")])
            .vertex("b", [Predicate::eq("type", "city")])
            .edge("a", "b", "livesIn")
            .build();
        for m in coarse_relaxations(&q) {
            assert!(m.applied(&q).is_ok(), "mod failed: {m}");
        }
    }
}
