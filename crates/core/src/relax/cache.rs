//! Cardinality cache for executed query candidates (§5.5, App. B.2).
//!
//! Different relaxation paths through the lattice frequently re-derive the
//! same candidate query; caching executed cardinalities by canonical
//! signature turns those repeats into hash lookups. Appendix B.2 reports
//! the resource consumption of this cache — the stats here reproduce it.

use std::collections::HashMap;

/// Memoization of candidate cardinalities keyed by canonical signature.
#[derive(Debug, Default, Clone)]
pub struct QueryCache {
    map: HashMap<String, u64>,
    lookups: u64,
    hits: u64,
}

/// Snapshot of cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of cached entries.
    pub entries: usize,
    /// Number of lookups performed.
    pub lookups: u64,
    /// Number of lookups answered from the cache.
    pub hits: u64,
    /// Approximate memory footprint of keys and values in bytes.
    pub approx_bytes: usize,
}

impl QueryCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a signature.
    pub fn get(&mut self, sig: &str) -> Option<u64> {
        self.lookups += 1;
        let hit = self.map.get(sig).copied();
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Store an executed cardinality.
    pub fn insert(&mut self, sig: String, cardinality: u64) {
        self.map.insert(sig, cardinality);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.len(),
            lookups: self.lookups,
            hits: self.hits,
            approx_bytes: self
                .map
                .keys()
                .map(|k| k.len() + std::mem::size_of::<u64>())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = QueryCache::new();
        assert_eq!(c.get("q1"), None);
        c.insert("q1".into(), 7);
        assert_eq!(c.get("q1"), Some(7));
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert!(s.approx_bytes >= "q1".len());
    }

    #[test]
    fn overwrite_updates_value() {
        let mut c = QueryCache::new();
        c.insert("q".into(), 1);
        c.insert("q".into(), 2);
        assert_eq!(c.get("q"), Some(2));
        assert_eq!(c.stats().entries, 1);
    }
}
