//! Cardinality cache for executed query candidates (§5.5, App. B.2).
//!
//! Different relaxation paths through the lattice frequently re-derive the
//! same candidate query; caching executed cardinalities by canonical
//! signature turns those repeats into hash lookups. Appendix B.2 reports
//! the resource consumption of this cache — the stats here reproduce it.

use std::collections::HashMap;

/// Memoization of candidate cardinalities keyed by canonical signature.
///
/// Entries inserted by the parallel sibling batcher are marked
/// *speculative*: the first [`QueryCache::get`] that consumes one counts
/// it as the miss a serial run would have recorded (and un-marks it), so
/// the App. B.2 lookup/hit statistics are identical in serial and
/// parallel mode — speculation changes *when* a cardinality is computed,
/// never how its first use is accounted.
#[derive(Debug, Default, Clone)]
pub struct QueryCache {
    /// `signature → (cardinality, still-speculative)`.
    map: HashMap<String, (u64, bool)>,
    lookups: u64,
    hits: u64,
}

/// Snapshot of cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of cached entries.
    pub entries: usize,
    /// Number of lookups performed.
    pub lookups: u64,
    /// Number of lookups answered from the cache.
    pub hits: u64,
    /// Approximate memory footprint of keys and values in bytes.
    pub approx_bytes: usize,
}

impl QueryCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a signature. Consuming a speculative entry for the first
    /// time counts as the miss serial execution would have recorded.
    pub fn get(&mut self, sig: &str) -> Option<u64> {
        self.lookups += 1;
        match self.map.get_mut(sig) {
            Some((c, speculative)) => {
                if *speculative {
                    *speculative = false;
                } else {
                    self.hits += 1;
                }
                Some(*c)
            }
            None => None,
        }
    }

    /// Look up a signature without touching the lookup/hit counters — used
    /// by the speculative sibling batcher to decide what is worth probing
    /// in parallel without distorting the App. B.2 reuse statistics.
    pub fn peek(&self, sig: &str) -> Option<u64> {
        self.map.get(sig).map(|&(c, _)| c)
    }

    /// Store an executed cardinality.
    pub fn insert(&mut self, sig: String, cardinality: u64) {
        self.map.insert(sig, (cardinality, false));
    }

    /// Store a cardinality measured *speculatively* (by the parallel
    /// sibling batcher, ahead of serial execution order). Never overwrites
    /// an executed entry.
    pub fn insert_speculative(&mut self, sig: String, cardinality: u64) {
        self.map.entry(sig).or_insert((cardinality, true));
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.len(),
            lookups: self.lookups,
            hits: self.hits,
            approx_bytes: self
                .map
                .keys()
                .map(|k| k.len() + std::mem::size_of::<u64>())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = QueryCache::new();
        assert_eq!(c.get("q1"), None);
        c.insert("q1".into(), 7);
        assert_eq!(c.get("q1"), Some(7));
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert!(s.approx_bytes >= "q1".len());
    }

    #[test]
    fn overwrite_updates_value() {
        let mut c = QueryCache::new();
        c.insert("q".into(), 1);
        c.insert("q".into(), 2);
        assert_eq!(c.get("q"), Some(2));
        assert_eq!(c.stats().entries, 1);
    }
}
