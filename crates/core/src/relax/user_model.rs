//! The learned user-preference model for query rewriting (§5.4).
//!
//! The rewriter never interrogates the user about individual constraints.
//! Instead it observes *ratings* of delivered explanations: when the user
//! rates an explanation that modified elements `{x, y}` highly, the model
//! raises the modification tolerance of `x` and `y`; a poor rating lowers
//! it. Candidate priorities are then biased toward modifying tolerated
//! elements ([`PreferenceModel::tolerance`]), which steers subsequent
//! rounds away from constraints the user silently protects — the
//! *adaptation of query rewriting* of §5.4.2.

use crate::user::simulated::SimulatedUser;
use std::collections::HashMap;
use whyq_query::{PatternQuery, Target};

/// Exponentially-smoothed tolerance weights per query element.
#[derive(Debug, Clone)]
pub struct PreferenceModel {
    weights: HashMap<Target, f64>,
    /// Smoothing factor of the rating updates.
    pub alpha: f64,
}

impl Default for PreferenceModel {
    fn default() -> Self {
        PreferenceModel {
            weights: HashMap::new(),
            alpha: 0.5,
        }
    }
}

impl PreferenceModel {
    /// Model with a custom smoothing factor.
    pub fn with_alpha(alpha: f64) -> Self {
        PreferenceModel {
            weights: HashMap::new(),
            alpha: alpha.clamp(0.0, 1.0),
        }
    }

    /// Number of elements with learned weights.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Learned tolerance of modifying an element (neutral 0.5 default).
    pub fn weight(&self, t: Target) -> f64 {
        self.weights.get(&t).copied().unwrap_or(0.5)
    }

    /// Ingest a rating of a delivered explanation: every element the
    /// explanation modified moves its tolerance toward the rating.
    pub fn observe(&mut self, original: &PatternQuery, explanation: &PatternQuery, rating: f64) {
        let rating = rating.clamp(0.0, 1.0);
        for t in SimulatedUser::changed_elements(original, explanation) {
            let w = self.weights.entry(t).or_insert(0.5);
            *w = (1.0 - self.alpha) * *w + self.alpha * rating;
        }
    }

    /// Mean tolerance of the elements a candidate modifies relative to its
    /// parent — the priority bonus of §5.4.2. Neutral 0.5 when the
    /// candidate modifies nothing.
    pub fn tolerance(&self, parent: &PatternQuery, candidate: &PatternQuery) -> f64 {
        let changed = SimulatedUser::changed_elements(parent, candidate);
        if changed.is_empty() {
            return 0.5;
        }
        changed.iter().map(|&t| self.weight(t)).sum::<f64>() / changed.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_query::{GraphMod, Predicate, QVid, QueryBuilder};

    fn q() -> PatternQuery {
        QueryBuilder::new("q")
            .vertex("a", [Predicate::eq("type", "person")])
            .vertex("b", [Predicate::eq("type", "city")])
            .edge("a", "b", "livesIn")
            .build()
    }

    #[test]
    fn observe_moves_weights_toward_rating() {
        let original = q();
        let (modified, _) = GraphMod::RemovePredicate {
            target: Target::Vertex(QVid(0)),
            attr: "type".into(),
        }
        .applied(&original)
        .unwrap();
        let mut model = PreferenceModel::default();
        model.observe(&original, &modified, 1.0);
        assert!(model.weight(Target::Vertex(QVid(0))) > 0.5);
        model.observe(&original, &modified, 0.0);
        // pulled back toward 0
        assert!(model.weight(Target::Vertex(QVid(0))) <= 0.5);
        assert_eq!(model.len(), 1);
    }

    #[test]
    fn tolerance_reflects_learned_weights() {
        let original = q();
        let (bad, _) = GraphMod::RemoveEdge(whyq_query::QEid(0))
            .applied(&original)
            .unwrap();
        let mut model = PreferenceModel::default();
        model.observe(&original, &bad, 0.0);
        let (good, _) = GraphMod::RemovePredicate {
            target: Target::Vertex(QVid(1)),
            attr: "type".into(),
        }
        .applied(&original)
        .unwrap();
        assert!(model.tolerance(&original, &good) > model.tolerance(&original, &bad));
    }

    #[test]
    fn alpha_is_clamped() {
        let m = PreferenceModel::with_alpha(7.0);
        assert_eq!(m.alpha, 1.0);
    }

    #[test]
    fn unchanged_candidate_is_neutral() {
        let model = PreferenceModel::default();
        assert_eq!(model.tolerance(&q(), &q()), 0.5);
    }
}
