//! Coarse-grained modification-based explanations for why-empty queries
//! (Ch. 5).
//!
//! A failed (empty) query is rewritten by *discarding constraints* —
//! predicates, edges, vertices — until a candidate delivers results. The
//! search space is the relaxation lattice over the original query; the
//! rewriter explores it best-first:
//!
//! 1. **Candidate generation** ([`candidates`]) applies every applicable
//!    coarse relaxation to the current query (§5.3.1).
//! 2. **Prioritization** ([`priority`]) ranks candidates with
//!    query-dependent statistics (§5.2) — estimated cardinality, average
//!    `path(1)` cardinality, induced cardinality changes (§5.3.2) — or
//!    syntactic closeness / random order as baselines (§5.5.1).
//! 3. **Execution & caching** ([`cache`]) evaluates the most promising
//!    candidate, memoizing cardinalities by canonical signature so
//!    re-derived candidates are free (§5.5, App. B.2).
//! 4. **User integration** ([`user_model`]) learns a preference model from
//!    ratings of delivered explanations and biases the priorities toward
//!    modifications the user tolerates (§5.4).

pub mod cache;
pub mod candidates;
pub mod priority;
pub mod user_model;

use crate::explanation::ModificationExplanation;
use crate::relax::cache::{CacheStats, QueryCache};
use crate::relax::candidates::coarse_relaxations;
use crate::relax::priority::PriorityFn;
use crate::relax::user_model::PreferenceModel;
use crate::stats::Statistics;
use crate::user::SimulatedUser;
use std::collections::{BinaryHeap, HashSet};
use whyq_matcher::{Budget, MatchOptions, Termination};
use whyq_metrics::syntactic_distance;
use whyq_query::{analyze_against, signature::signature, GraphMod, PatternQuery, Target};
use whyq_session::{Database, Executor, Session, WhyqError};

/// Priority boost for a candidate whose modification discards a constraint
/// the static analyzer proved conflicting ([`AnalysisReport::conflict_set`]
/// of `whyq-query`): such a rewrite is the *minimal certain* step toward
/// satisfiability, so it must outrank every statistics-scored sibling. The
/// magnitude dwarfs any statistics score (estimated cardinalities are
/// graph-bounded) without drowning the statistics: among several
/// conflict-targeting candidates the underlying score still tie-breaks.
const CONFLICT_BONUS: f64 = 1e9;

/// Does applying `m` discard a constraint named in `conflicts`?
fn targets_conflict(m: &GraphMod, conflicts: &[(Target, Option<String>)]) -> bool {
    match m {
        // `RemovePredicate` drops *all* predicates with the attribute, so
        // one modification resolves even a merged contradiction like
        // `age > 30 ∧ age < 20`
        GraphMod::RemovePredicate { target, attr } => conflicts
            .iter()
            .any(|(t, a)| t == target && a.as_deref() == Some(attr.as_str())),
        // element-level conflicts (unknown edge type, no direction) are
        // resolved by discarding the element
        GraphMod::RemoveEdge(e) => conflicts
            .iter()
            .any(|(t, a)| *t == Target::Edge(*e) && a.is_none()),
        GraphMod::RemoveVertex(v) => conflicts
            .iter()
            .any(|(t, a)| *t == Target::Vertex(*v) && a.is_none()),
        _ => false,
    }
}

/// Configuration of the coarse-grained rewriter.
#[derive(Debug, Clone)]
pub struct RelaxConfig {
    /// Candidate priority function (§5.5.1).
    pub priority: PriorityFn,
    /// Budget: maximum number of *executed* candidate queries.
    pub max_executed: usize,
    /// Cap when counting a candidate's results.
    pub count_limit: u64,
    /// Memoize executed candidates by signature (§5.5 / App. B.2).
    pub use_cache: bool,
    /// Weight of the learned preference model in the priority (0 = model
    /// ignored).
    pub lambda: f64,
    /// Resource governor of the run: deadline, step budget and external
    /// cancellation, on top of the logical `max_executed` cap. On a trip
    /// the search stops and the outcome so far is returned, tagged with
    /// the budget's [`Termination`]. The budget is single-run state: use a
    /// fresh one per `rewrite()` call.
    pub budget: Budget,
}

impl Default for RelaxConfig {
    fn default() -> Self {
        RelaxConfig {
            priority: PriorityFn::Path1PlusInduced,
            max_executed: 200,
            count_limit: 10_000,
            use_cache: true,
            lambda: 0.0,
            budget: Budget::unlimited(),
        }
    }
}

/// One executed candidate in the search trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryPoint {
    /// 1-based execution index.
    pub executed: usize,
    /// Result cardinality of the candidate (capped at `count_limit`).
    pub cardinality: u64,
    /// Syntactic distance of the candidate to the original query.
    pub syntactic: f64,
    /// Relaxation depth (number of applied modifications).
    pub depth: usize,
}

/// Outcome of a rewriting run.
#[derive(Debug, Clone)]
pub struct RelaxOutcome {
    /// The first accepted explanation, if the budget sufficed.
    pub explanation: Option<ModificationExplanation>,
    /// Number of executed candidate queries.
    pub executed: usize,
    /// Number of generated (not necessarily executed) candidates.
    pub generated: usize,
    /// Sibling candidates counted *speculatively* by the parallel batcher
    /// (cardinality-cache warm-ups beyond the serially executed ones; 0 in
    /// serial mode).
    pub speculated: usize,
    /// Cache statistics (App. B.2).
    pub cache: CacheStats,
    /// Execution trajectory (§5.5.2 convergence plots).
    pub trajectory: Vec<TrajectoryPoint>,
    /// How the run ended: [`Termination::Complete`] when the search
    /// finished on its own (explanation found or `max_executed`
    /// exhausted), any other variant when [`RelaxConfig::budget`] tripped
    /// and the outcome reflects only the candidates executed up to that
    /// point.
    pub termination: Termination,
}

/// A delivered explanation with the user's rating (§5.5.4, App. B.1).
#[derive(Debug, Clone)]
pub struct RatedRound {
    /// The explanation delivered in this round.
    pub explanation: ModificationExplanation,
    /// The user's rating in `[0, 1]`.
    pub rating: f64,
    /// Candidates executed in this round.
    pub executed: usize,
}

/// Outcome of an interactive session with rating feedback.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// All delivered rounds with ratings.
    pub rounds: Vec<RatedRound>,
    /// Index into `rounds` of the first accepted explanation.
    pub accepted: Option<usize>,
}

struct Node {
    priority: f64,
    seq: u64,
    query: PatternQuery,
    mods: Vec<GraphMod>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // max-heap on priority; FIFO tie-break for determinism
        self.priority
            .total_cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

/// The coarse-grained why-empty rewriter (Ch. 5).
///
/// The cardinality cache is rewriter state, not per-run state: interactive
/// sessions re-enter the search after every rejected proposal and re-derive
/// many of the same candidates — the re-use the thesis measures in App. B.2.
pub struct CoarseRewriter<'g> {
    db: &'g Database,
    session: Session<'g>,
    stats: Statistics<'g>,
    cache: std::cell::RefCell<QueryCache>,
    /// Pool for speculative sibling-candidate probes ([`Executor`]); a
    /// 1-thread executor (the `WHYQ_THREADS=1` / single-core default)
    /// keeps the loop strictly serial.
    executor: Executor,
}

impl<'g> CoarseRewriter<'g> {
    /// Rewriter over `db`. Candidate execution runs through an own
    /// session, so every candidate count benefits from the database's
    /// configured indexes and shared plan cache (siblings re-derived
    /// across interactive rounds skip compilation entirely). Parallelism
    /// of the sibling probes follows the environment
    /// ([`whyq_session::ParallelOpts::from_env`]); override with
    /// [`CoarseRewriter::with_executor`].
    pub fn new(db: &'g Database) -> Self {
        CoarseRewriter {
            db,
            session: db.session(),
            stats: Statistics::new(db),
            cache: std::cell::RefCell::new(QueryCache::new()),
            executor: Executor::from_env(),
        }
    }

    /// Override the executor used for speculative sibling batches.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Access to the statistics provider (for reporting).
    pub fn stats(&self) -> &Statistics<'g> {
        &self.stats
    }

    /// Snapshot of the shared cardinality cache (App. B.2 reporting).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.borrow().stats()
    }

    /// Rewrite a why-empty query until the first non-empty candidate.
    pub fn rewrite(&self, q: &PatternQuery, config: &RelaxConfig) -> RelaxOutcome {
        self.rewrite_guided(q, config, None, &HashSet::new())
    }

    /// Rewrite with an optional preference model biasing priorities
    /// (`config.lambda` controls its weight) and a set of excluded
    /// candidate signatures (already delivered and rejected explanations).
    pub fn rewrite_guided(
        &self,
        q: &PatternQuery,
        config: &RelaxConfig,
        model: Option<&PreferenceModel>,
        exclude: &HashSet<String>,
    ) -> RelaxOutcome {
        let mut cache = self.cache.borrow_mut();
        let mut visited: HashSet<String> = HashSet::new();
        let mut frontier: BinaryHeap<Node> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut generated = 0usize;
        let mut executed = 0usize;
        let mut speculated = 0usize;
        let mut trajectory = Vec::new();

        // seed the relaxation frontier from the static analyzer's conflict
        // set: when the emptiness is provable from the query text (a
        // contradictory conjunction, an unknown constant/type), the
        // candidates discarding exactly those constraints are explored
        // first instead of blind sibling enumeration
        let conflicts = analyze_against(q, self.db.graph()).report.conflict_set();

        // the original query is known to be empty — expand it directly
        visited.insert(signature(q));
        self.expand(
            q,
            &[],
            config,
            model,
            &conflicts,
            &mut frontier,
            &mut visited,
            &mut seq,
            &mut generated,
        );

        // every candidate count shares the run's budget: deadline, step
        // and cancellation checks happen *inside* the matcher DFS, so even
        // one pathological candidate cannot overshoot the deadline
        let counting_opts =
            MatchOptions::counting(Some(config.count_limit)).with_budget(config.budget.clone());

        while let Some(node) = frontier.pop() {
            if executed >= config.max_executed || config.budget.poll().is_err() {
                break;
            }
            // Speculative sibling batch (parallel mode only): the
            // candidates most likely to execute next are this node and the
            // current top of the frontier — probe the uncached ones
            // concurrently through [`Executor::count_batch`] and warm the
            // cardinality cache. This is *pure speculation*: the serial
            // pop → execute → expand order below is untouched, so the
            // chosen explanation, the executed count and the trajectory
            // are bit-identical to serial mode; at worst a few probes are
            // wasted when an expansion outranks the peeked siblings.
            if config.use_cache && self.executor.is_parallel() && !frontier.is_empty() {
                speculated += self.speculate_siblings(&node, &mut frontier, &mut cache, config);
            }
            let sig = signature(&node.query);
            let cached = if config.use_cache {
                cache.get(&sig)
            } else {
                None
            };
            let cardinality = match cached {
                Some(c) => c,
                None => match self.session.count_opts(&node.query, counting_opts.clone()) {
                    Ok(c) => {
                        if config.use_cache {
                            cache.insert(sig.clone(), c);
                        }
                        c
                    }
                    // tripped budget: stop the search without caching the
                    // truncated count — a later run with headroom must
                    // re-measure this candidate
                    Err(WhyqError::Interrupted { .. }) => break,
                    Err(e) => panic!("relaxation preserves query validity: {e}"),
                },
            };
            executed += 1;
            let syn = syntactic_distance(q, &node.query);
            trajectory.push(TrajectoryPoint {
                executed,
                cardinality,
                syntactic: syn,
                depth: node.mods.len(),
            });
            if cardinality > 0 && !exclude.contains(&sig) {
                return RelaxOutcome {
                    explanation: Some(ModificationExplanation {
                        query: node.query,
                        mods: node.mods,
                        cardinality,
                        syntactic_distance: syn,
                    }),
                    executed,
                    generated,
                    speculated,
                    cache: cache.stats(),
                    trajectory,
                    termination: config.budget.termination(),
                };
            }
            // still empty (or excluded) — relax further
            self.expand(
                &node.query,
                &node.mods,
                config,
                model,
                &conflicts,
                &mut frontier,
                &mut visited,
                &mut seq,
                &mut generated,
            );
        }

        RelaxOutcome {
            explanation: None,
            executed,
            generated,
            speculated,
            cache: cache.stats(),
            trajectory,
            termination: config.budget.termination(),
        }
    }

    /// Probe the cardinalities of `head` and the top of `frontier` in one
    /// parallel batch, inserting results into the cardinality cache. The
    /// frontier is restored exactly (nodes are popped to peek and pushed
    /// back); returns the number of batched probes actually executed.
    fn speculate_siblings(
        &self,
        head: &Node,
        frontier: &mut BinaryHeap<Node>,
        cache: &mut QueryCache,
        config: &RelaxConfig,
    ) -> usize {
        let batch = self.executor.threads().saturating_mul(2);
        let mut peeked: Vec<Node> = Vec::new();
        while peeked.len() + 1 < batch {
            match frontier.pop() {
                Some(n) => peeked.push(n),
                None => break,
            }
        }
        let mut seen: HashSet<String> = HashSet::new();
        let mut targets: Vec<(&PatternQuery, String)> = Vec::new();
        for n in std::iter::once(head).chain(peeked.iter()) {
            let sig = signature(&n.query);
            if cache.peek(&sig).is_none() && seen.insert(sig.clone()) {
                targets.push((&n.query, sig));
            }
        }
        let mut speculated = 0;
        // a batch of one would just serialize the head's own probe with
        // extra ceremony — only fan out when there are true siblings
        if targets.len() >= 2 {
            let queries: Vec<&PatternQuery> = targets.iter().map(|(q, _)| *q).collect();
            // the shared budget governs speculative probes too; a tripped
            // probe comes back `Err(Interrupted)` and is simply not cached
            let counts = self.executor.count_batch(
                self.db,
                &queries,
                MatchOptions::counting(Some(config.count_limit)).with_budget(config.budget.clone()),
            );
            for ((_, sig), c) in targets.into_iter().zip(counts) {
                if let Ok(c) = c {
                    // speculative inserts are consumed as the miss serial
                    // mode would record, keeping App. B.2 stats identical
                    cache.insert_speculative(sig, c);
                    speculated += 1;
                }
            }
        }
        for n in peeked {
            frontier.push(n);
        }
        speculated
    }

    /// Interactive session (§5.5.4, App. B.1): deliver explanations, let
    /// the user rate them, learn the preference model and retry until an
    /// explanation is accepted (rating ≥ `accept_threshold`) or `rounds`
    /// are exhausted. Returns the rated rounds and the learned model.
    pub fn session(
        &self,
        q: &PatternQuery,
        config: &RelaxConfig,
        user: &SimulatedUser,
        accept_threshold: f64,
        rounds: usize,
    ) -> (SessionOutcome, PreferenceModel) {
        let mut model = PreferenceModel::default();
        let mut exclude = HashSet::new();
        let mut out = SessionOutcome {
            rounds: Vec::new(),
            accepted: None,
        };
        for round in 0..rounds {
            let outcome = self.rewrite_guided(q, config, Some(&model), &exclude);
            let Some(expl) = outcome.explanation else {
                break;
            };
            let rating = user.rate(q, &expl.query);
            model.observe(q, &expl.query, rating);
            exclude.insert(signature(&expl.query));
            let accepted = rating >= accept_threshold;
            out.rounds.push(RatedRound {
                explanation: expl,
                rating,
                executed: outcome.executed,
            });
            if accepted {
                out.accepted = Some(round);
                break;
            }
        }
        (out, model)
    }

    #[allow(clippy::too_many_arguments)]
    fn expand(
        &self,
        parent: &PatternQuery,
        parent_mods: &[GraphMod],
        config: &RelaxConfig,
        model: Option<&PreferenceModel>,
        conflicts: &[(Target, Option<String>)],
        frontier: &mut BinaryHeap<Node>,
        visited: &mut HashSet<String>,
        seq: &mut u64,
        generated: &mut usize,
    ) {
        for m in coarse_relaxations(parent) {
            let Ok((child, _)) = m.applied(parent) else {
                continue;
            };
            let sig = signature(&child);
            if !visited.insert(sig) {
                continue;
            }
            *generated += 1;
            let mut priority =
                config
                    .priority
                    .score(&child, parent, &self.stats, parent_mods.len());
            if let (Some(model), true) = (model, config.lambda > 0.0) {
                priority += config.lambda * model.tolerance(parent, &child);
            }
            if targets_conflict(&m, conflicts) {
                priority += CONFLICT_BONUS;
            }
            let mut mods = parent_mods.to_vec();
            mods.push(m);
            *seq += 1;
            frontier.push(Node {
                priority,
                seq: *seq,
                query: child,
                mods,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::{PropertyGraph, Value};
    use whyq_query::{Predicate, QueryBuilder};

    /// Anna works at TUD in Dresden; the query asks for Berlin → empty.
    fn data() -> Database {
        let mut g = PropertyGraph::new();
        let anna = g.add_vertex([
            ("type", Value::str("person")),
            ("name", Value::str("Anna")),
            ("age", Value::Int(27)),
        ]);
        let tud = g.add_vertex([("type", Value::str("university"))]);
        let dresden = g.add_vertex([
            ("type", Value::str("city")),
            ("name", Value::str("Dresden")),
        ]);
        g.add_edge(anna, tud, "workAt", []);
        g.add_edge(tud, dresden, "locatedIn", []);
        Database::open(g).expect("open")
    }

    fn failing() -> PatternQuery {
        QueryBuilder::new("f")
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex("u", [Predicate::eq("type", "university")])
            .vertex(
                "c",
                [
                    Predicate::eq("type", "city"),
                    Predicate::eq("name", "Berlin"),
                ],
            )
            .edge("p", "u", "workAt")
            .edge("u", "c", "locatedIn")
            .build()
    }

    #[test]
    fn finds_minimal_relaxation() {
        let db = data();
        let rw = CoarseRewriter::new(&db);
        let out = rw.rewrite(&failing(), &RelaxConfig::default());
        let expl = out.explanation.expect("explanation found");
        assert!(expl.cardinality >= 1);
        // a single discarded constraint suffices (the Berlin name predicate)
        assert_eq!(expl.mods.len(), 1);
        assert!(expl.syntactic_distance > 0.0);
        assert!(out.executed >= 1);
        assert!(out.generated >= out.executed);
    }

    #[test]
    fn conflict_set_seeds_the_first_rewrites() {
        use whyq_query::{QVid, Target};
        let db = data();
        let rw = CoarseRewriter::new(&db);
        // statically unsatisfiable: the contradictory age conjunction is
        // provable from the query text, and the analyzer names it
        let q = QueryBuilder::new("contra")
            .vertex(
                "p",
                [
                    Predicate::eq("type", "person"),
                    Predicate::at_least("age", 31.0),
                    Predicate::at_most("age", 20.0),
                ],
            )
            .build();
        let conflicts = whyq_query::analyze_against(&q, db.graph())
            .report
            .conflict_set();
        assert!(!conflicts.is_empty(), "the contradiction is detected");
        let out = rw.rewrite(&q, &RelaxConfig::default());
        let expl = out.explanation.expect("explanation found");
        // the very first rewrite discards the conflicting constraint: the
        // relax loop starts from the analyzer's conflict set instead of
        // blind sibling enumeration. `RemovePredicate` drops every `age`
        // predicate at once, so one modification resolves the conjunction.
        assert_eq!(
            expl.mods[0],
            GraphMod::RemovePredicate {
                target: Target::Vertex(QVid(0)),
                attr: "age".into(),
            }
        );
        assert!(targets_conflict(&expl.mods[0], &conflicts));
        assert_eq!(out.executed, 1, "the first executed candidate succeeds");
        assert!(expl.cardinality >= 1);
    }

    #[test]
    fn trajectory_is_recorded() {
        let db = data();
        let rw = CoarseRewriter::new(&db);
        let out = rw.rewrite(&failing(), &RelaxConfig::default());
        assert_eq!(out.trajectory.len(), out.executed);
        assert!(out.trajectory.last().unwrap().cardinality > 0);
    }

    #[test]
    fn budget_zero_finds_nothing() {
        let db = data();
        let rw = CoarseRewriter::new(&db);
        let out = rw.rewrite(
            &failing(),
            &RelaxConfig {
                max_executed: 0,
                ..Default::default()
            },
        );
        assert!(out.explanation.is_none());
        assert_eq!(out.executed, 0);
    }

    #[test]
    fn priority_functions_all_terminate() {
        let db = data();
        let rw = CoarseRewriter::new(&db);
        for p in [
            PriorityFn::Random(42),
            PriorityFn::MinSyntactic,
            PriorityFn::EstimatedCardinality,
            PriorityFn::AvgPath1,
            PriorityFn::InducedChange,
            PriorityFn::Path1PlusInduced,
        ] {
            let out = rw.rewrite(
                &failing(),
                &RelaxConfig {
                    priority: p,
                    ..Default::default()
                },
            );
            assert!(out.explanation.is_some(), "no explanation found");
        }
    }

    #[test]
    fn parallel_speculation_is_transparent() {
        use whyq_session::ParallelOpts;
        let db = data();
        let serial = CoarseRewriter::new(&db).with_executor(Executor::serial());
        let par =
            CoarseRewriter::new(&db).with_executor(Executor::new(ParallelOpts::with_threads(4)));
        let a = serial.rewrite(&failing(), &RelaxConfig::default());
        let b = par.rewrite(&failing(), &RelaxConfig::default());
        // the speculative batch only warms the cardinality cache: the
        // executed sequence, trajectory and chosen explanation are
        // bit-identical to serial mode
        assert_eq!(a.executed, b.executed);
        assert_eq!(a.trajectory, b.trajectory);
        assert_eq!(
            a.explanation.as_ref().map(|e| signature(&e.query)),
            b.explanation.as_ref().map(|e| signature(&e.query))
        );
        assert_eq!(
            a.explanation.unwrap().cardinality,
            b.explanation.unwrap().cardinality
        );
        assert_eq!(a.speculated, 0, "serial mode never speculates");
        assert!(b.speculated >= 2, "parallel mode batched sibling probes");
        // speculative warm-ups are accounted as the misses serial mode
        // would record, so the App. B.2 reuse statistics agree too
        // (entries may differ: wasted speculations stay cached)
        assert_eq!(a.cache.lookups, b.cache.lookups);
        assert_eq!(a.cache.hits, b.cache.hits);
        assert!(b.cache.entries >= a.cache.entries);
    }

    #[test]
    fn elapsed_deadline_stops_the_search_tagged() {
        let db = data();
        let rw = CoarseRewriter::new(&db);
        let out = rw.rewrite(
            &failing(),
            &RelaxConfig {
                budget: Budget::deadline(std::time::Duration::ZERO),
                ..Default::default()
            },
        );
        assert!(out.explanation.is_none());
        assert_eq!(out.executed, 0);
        assert_eq!(out.termination, Termination::DeadlineExceeded);
    }

    #[test]
    fn ungoverned_run_reports_complete() {
        let db = data();
        let rw = CoarseRewriter::new(&db);
        let out = rw.rewrite(&failing(), &RelaxConfig::default());
        assert!(out.explanation.is_some());
        assert_eq!(out.termination, Termination::Complete);
    }

    #[test]
    fn excluded_solutions_are_skipped() {
        let db = data();
        let rw = CoarseRewriter::new(&db);
        let first = rw
            .rewrite(&failing(), &RelaxConfig::default())
            .explanation
            .unwrap();
        let mut exclude = HashSet::new();
        exclude.insert(signature(&first.query));
        let second = rw
            .rewrite_guided(&failing(), &RelaxConfig::default(), None, &exclude)
            .explanation
            .unwrap();
        assert_ne!(signature(&first.query), signature(&second.query));
    }

    #[test]
    fn session_with_agreeable_user_accepts_first_round() {
        let db = data();
        let rw = CoarseRewriter::new(&db);
        // the user only protects the workAt edge; the natural fix (drop the
        // Berlin name predicate) never touches it
        let user = SimulatedUser::protecting_edges(&[whyq_query::QEid(0)]);
        let (outcome, _) = rw.session(&failing(), &RelaxConfig::default(), &user, 0.9, 5);
        assert_eq!(outcome.accepted, Some(0));
        assert!(outcome.rounds[0].rating >= 0.9);
    }

    #[test]
    fn session_with_protective_user_adapts() {
        let db = data();
        let rw = CoarseRewriter::new(&db);
        // the user insists on keeping the city vertex untouched — but every
        // fix must neutralize the Berlin predicate, so nothing can rate 1.0;
        // with a 0.4 acceptance bar the session rejects the pure predicate
        // fix (rating 0.0) and adapts to a mixed-change explanation
        let user = SimulatedUser::protecting_vertices(&[whyq_query::QVid(2)]);
        let config = RelaxConfig {
            lambda: 10.0,
            ..Default::default()
        };
        let (outcome, model) = rw.session(&failing(), &config, &user, 0.4, 6);
        assert!(outcome.rounds.len() >= 2, "first round must be rejected");
        let accepted = outcome.accepted.expect("eventually accepted");
        assert!(outcome.rounds[accepted].rating >= 0.4);
        // ratings improved over the session
        assert!(outcome.rounds[accepted].rating > outcome.rounds[0].rating);
        assert!(!model.is_empty());
    }
}
