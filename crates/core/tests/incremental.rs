//! The why-engine's answers are invariant under the sibling cache.
//!
//! The relax loop and the MCS traversals probe hundreds of near-identical
//! sibling queries; with the sibling cache enabled (the default) most of
//! those probes replay memoized per-component results instead of
//! re-executing. These suites pin the contract that this is *purely* a
//! performance optimization: explanations, trajectories, `paths_tried`
//! and `extensions` work measures are bit-identical between a default
//! database and one opened with `sibling_cache_capacity(0)`, in serial
//! and 4-thread executor modes, and a mid-run Budget trip never poisons
//! the cache for later complete runs.

use whyq_core::problem::CardinalityGoal;
use whyq_core::relax::{CoarseRewriter, RelaxConfig, RelaxOutcome};
use whyq_core::subgraph::{BoundedMcs, DiscoverMcs, McsConfig};
use whyq_core::SubgraphExplanation;
use whyq_datagen::{ldbc_failing_queries, ldbc_graph, ldbc_queries, LdbcConfig};
use whyq_matcher::{Budget, Termination};
use whyq_session::{Database, DatabaseConfig, Executor, ParallelOpts};

/// The same graph opened twice: sibling cache on (default) and off.
fn db_pair() -> (Database, Database) {
    let g = ldbc_graph(LdbcConfig::default());
    let inc = Database::open(g.clone()).expect("open");
    let off =
        Database::open_with(g, DatabaseConfig::default().sibling_cache_capacity(0)).expect("open");
    (inc, off)
}

fn assert_same_outcome(a: &RelaxOutcome, b: &RelaxOutcome) {
    assert_eq!(a.executed, b.executed);
    assert_eq!(a.generated, b.generated);
    assert_eq!(a.trajectory, b.trajectory);
    assert_eq!(a.termination, b.termination);
    match (&a.explanation, &b.explanation) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.query.signature(), y.query.signature());
            assert_eq!(x.mods, y.mods);
            assert_eq!(x.cardinality, y.cardinality);
            assert!((x.syntactic_distance - y.syntactic_distance).abs() < f64::EPSILON);
        }
        (x, y) => panic!("explanation presence diverged: {x:?} vs {y:?}"),
    }
}

fn assert_same_subgraph(a: &SubgraphExplanation, b: &SubgraphExplanation) {
    assert_eq!(a.mcs.signature(), b.mcs.signature());
    assert_eq!(a.mcs_cardinality, b.mcs_cardinality);
    assert_eq!(a.differential, b.differential);
    assert_eq!(a.crossing_edge, b.crossing_edge);
    assert_eq!(a.paths_tried, b.paths_tried, "paths_tried diverged");
    assert_eq!(a.extensions, b.extensions, "extensions diverged");
    assert_eq!(a.termination, b.termination);
}

#[test]
fn relax_trajectories_are_cache_invariant_serial() {
    let (inc, off) = db_pair();
    for q in &ldbc_failing_queries() {
        let on = CoarseRewriter::new(&inc)
            .with_executor(Executor::serial())
            .rewrite(q, &RelaxConfig::default());
        let reference = CoarseRewriter::new(&off)
            .with_executor(Executor::serial())
            .rewrite(q, &RelaxConfig::default());
        assert_same_outcome(&on, &reference);

        // a second run over the now-warm cache replays instead of
        // re-executing — the outcome must not change
        let warm = CoarseRewriter::new(&inc)
            .with_executor(Executor::serial())
            .rewrite(q, &RelaxConfig::default());
        assert_same_outcome(&warm, &reference);
    }
    let stats = inc.sibling_stats();
    assert!(
        !inc.sibling_cache_enabled() || stats.hits > 0,
        "warm relax runs should replay: {stats:?}"
    );
}

#[test]
fn relax_trajectories_are_cache_invariant_batched() {
    let (inc, off) = db_pair();
    let par = || Executor::new(ParallelOpts::with_threads(4));
    for q in &ldbc_failing_queries() {
        let on = CoarseRewriter::new(&inc)
            .with_executor(par())
            .rewrite(q, &RelaxConfig::default());
        let reference = CoarseRewriter::new(&off)
            .with_executor(par())
            .rewrite(q, &RelaxConfig::default());
        assert_same_outcome(&on, &reference);
    }
}

#[test]
fn discover_mcs_is_cache_invariant() {
    let (inc, off) = db_pair();
    let par = || Executor::new(ParallelOpts::with_threads(4));
    for q in &ldbc_failing_queries() {
        let on = DiscoverMcs::new(&inc).run(q).expect("discover");
        let reference = DiscoverMcs::new(&off).run(q).expect("discover");
        assert_same_subgraph(&on, &reference);

        // warm replay and the 4-thread cardinality probes agree too
        let warm = DiscoverMcs::new(&inc).run(q).expect("discover");
        assert_same_subgraph(&warm, &reference);
        let threaded = DiscoverMcs::new(&inc)
            .with_executor(par())
            .run(q)
            .expect("discover");
        assert_same_subgraph(&threaded, &reference);
    }
}

#[test]
fn bounded_mcs_is_cache_invariant() {
    let (inc, off) = db_pair();
    let q3 = &ldbc_queries()[2];
    let on = BoundedMcs::new(&inc)
        .run(q3, CardinalityGoal::AtMost(10))
        .expect("bounded");
    let reference = BoundedMcs::new(&off)
        .run(q3, CardinalityGoal::AtMost(10))
        .expect("bounded");
    assert_same_subgraph(&on, &reference);
    let warm = BoundedMcs::new(&inc)
        .run(q3, CardinalityGoal::AtMost(10))
        .expect("bounded");
    assert_same_subgraph(&warm, &reference);
}

/// A step-starved relax run trips mid-search; whatever partial unit
/// results it produced must never be cached, so a later unconstrained
/// run on the same database still matches the cache-off reference.
#[test]
fn budget_tripped_relax_does_not_poison_the_cache() {
    let (inc, off) = db_pair();
    let q = &ldbc_failing_queries()[0];

    let starved = RelaxConfig {
        budget: Budget::steps(200),
        ..RelaxConfig::default()
    };
    let tripped = CoarseRewriter::new(&inc)
        .with_executor(Executor::serial())
        .rewrite(q, &starved);
    assert_ne!(
        tripped.termination,
        Termination::Complete,
        "200 steps must trip mid-relax (executed {})",
        tripped.executed
    );

    let after = CoarseRewriter::new(&inc)
        .with_executor(Executor::serial())
        .rewrite(q, &RelaxConfig::default());
    let reference = CoarseRewriter::new(&off)
        .with_executor(Executor::serial())
        .rewrite(q, &RelaxConfig::default());
    assert_same_outcome(&after, &reference);
}

/// The MCS twin: a budget trip mid-traversal leaves no truncated
/// cardinalities behind for the complete re-run to replay.
#[test]
fn budget_tripped_mcs_does_not_poison_the_cache() {
    let (inc, off) = db_pair();
    let q = &ldbc_failing_queries()[0];

    let starved = McsConfig {
        budget: Budget::steps(50),
        ..McsConfig::default()
    };
    let tripped = DiscoverMcs::new(&inc)
        .with_config(starved)
        .run(q)
        .expect("discover");
    assert_ne!(tripped.termination, Termination::Complete);

    let after = DiscoverMcs::new(&inc).run(q).expect("discover");
    let reference = DiscoverMcs::new(&off).run(q).expect("discover");
    assert_same_subgraph(&after, &reference);
}
