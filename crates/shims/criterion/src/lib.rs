//! Offline shim for the subset of the `criterion` API the workspace benches
//! use: `Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter`
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. The shim still *measures*: every benchmark runs a warm-up to
//! calibrate the per-sample iteration count, then takes timed samples and
//! reports median / mean / min ns-per-iteration to stdout. When the
//! `WHYQ_BENCH_JSON` environment variable names a file, all results of the
//! process are appended there as a JSON array — the workspace commits such
//! snapshots (e.g. `BENCH_matcher.json`) as performance evidence.
//!
//! Setting `WHYQ_BENCH_SMOKE=1` skips calibration and runs every benchmark
//! for exactly one iteration of one sample — a CI-friendly smoke mode that
//! proves the bench harness still compiles and executes without spending
//! measurement time (the reported numbers are meaningless then).

// The whole workspace is unsafe-free (audited 2026-08): lock it in.
#![forbid(unsafe_code)]

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (benches mostly use
/// `std::hint::black_box` directly).
pub use std::hint::black_box;

/// One measured benchmark, accumulated for the JSON snapshot.
#[derive(Debug, Clone)]
struct Record {
    group: String,
    name: String,
    samples: usize,
    iters_per_sample: u64,
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    records: Vec<Record>,
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 50,
        }
    }

    /// Run a benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        group.finish();
        self
    }

    /// Write the JSON snapshot if `WHYQ_BENCH_JSON` is set. Called by
    /// `criterion_main!`; harmless to call more than once.
    pub fn final_summary(&self) {
        let Ok(path) = std::env::var("WHYQ_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let mut out = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"group\": \"{}\", \"bench\": \"{}\", \"samples\": {}, \
                 \"iters_per_sample\": {}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \
                 \"min_ns\": {:.1}}}",
                escape(&r.group),
                escape(&r.name),
                r.samples,
                r.iters_per_sample,
                r.median_ns,
                r.mean_ns,
                r.min_ns,
            ));
        }
        out.push_str("\n]\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("criterion shim: cannot write {path}: {e}");
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measure one benchmark function.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let smoke = std::env::var("WHYQ_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
        // calibration: find an iteration count that makes one sample take
        // roughly `target` so Instant quantisation is negligible (smoke
        // mode pins one iteration of one sample instead — execution proof,
        // not measurement)
        let target = Duration::from_millis(5);
        let mut iters: u64 = 1;
        if !smoke {
            loop {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                if b.elapsed >= target || iters >= 1 << 20 {
                    break;
                }
                // grow towards the target with a safety factor
                let scale = if b.elapsed.is_zero() {
                    16.0
                } else {
                    (target.as_secs_f64() / b.elapsed.as_secs_f64()).clamp(1.5, 16.0)
                };
                iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
            }
        }

        let samples = if smoke { 1 } else { self.sample_size };
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(f64::total_cmp);
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let min = per_iter_ns[0];

        let full = if self.name.is_empty() {
            name.clone()
        } else {
            format!("{}/{}", self.name, name)
        };
        println!(
            "bench {full:<50} median {median:>12.1} ns/iter  (mean {mean:.1}, min {min:.1}, \
             {samples} samples x {iters} iters)"
        );
        let _ = std::io::stdout().flush();
        self.criterion.records.push(Record {
            group: self.name.clone(),
            name,
            samples,
            iters_per_sample: iters,
            median_ns: median,
            mean_ns: mean,
            min_ns: min,
        });
        self
    }

    /// End the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to every benchmark closure; times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it the calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Mirror of `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut n = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                n = n.wrapping_add(1);
                black_box(n)
            });
        });
        g.finish();
        assert_eq!(c.records.len(), 1);
        assert!(c.records[0].median_ns > 0.0);
    }
}
