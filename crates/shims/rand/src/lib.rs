//! Offline shim for the subset of the `rand` 0.9 API used by this
//! workspace: a seedable `StdRng` plus `random_range` / `random_bool`.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; the workload generators only need a deterministic, seedable,
//! reasonably distributed generator — not cryptographic quality. The core
//! generator is xoshiro256++ seeded through splitmix64, the same
//! construction the real `StdRng` family has used for its small RNGs.

// The whole workspace is unsafe-free (audited 2026-08): lock it in.
#![forbid(unsafe_code)]

/// A random number generator: an infinite stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The standard (non-cryptographic here) seedable generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types from whose ranges a uniform sample can be drawn.
///
/// A single generic trait (rather than one `SampleRange` impl per concrete
/// type) keeps integer-literal type inference working the way the real
/// `rand` crate does: `v[rng.random_range(0..3)]` must infer `usize` from
/// the indexing context.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive && lo == hi {
                    return lo;
                }
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u64;
                // multiply-shift bounded sampling (Lemire); the slight bias
                // of the plain high-product is fine for workload generation
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo < hi, "empty range in random_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// A range from which a uniform sample can be drawn.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Types producible by [`RngExt::random`] from the full value domain.
pub trait StandardUniform {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)`, matching `rand`'s float convention.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardUniform for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_uniform_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods on every generator (rand 0.9 naming).
pub trait RngExt: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// A value drawn from `T`'s full (or canonical) domain.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::draw(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Generator namespace mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let x: usize = a.random_range(0..7);
            assert!(x < 7);
            let y: i64 = a.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = a.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut r = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| r.random_bool(0.8)).count();
        assert!((7_500..8_500).contains(&hits), "got {hits}");
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
