//! Offline shim for the subset of the `proptest` API the workspace tests
//! use: the `proptest!` / `prop_compose!` / `prop_oneof!` macros, range and
//! tuple strategies, `prop::collection::vec`, `any::<T>()`, simple
//! character-class string strategies and `prop_map`.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its generated inputs (via
//!   `Debug`) and the case index, which is enough to reproduce because the
//!   generator is seeded deterministically from the test name;
//! * string strategies support only the `[x-y]{n}` / `[x-y]{n,m}`
//!   character-class patterns the tests actually use (plus literal
//!   fallback), not full regex;
//! * `prop_assert*` are plain `assert*` aliases (panic-based).

// The whole workspace is unsafe-free (audited 2026-08): lock it in.
#![forbid(unsafe_code)]

use rand::{RngCore, RngExt, SeedableRng, StdRng};
use std::rc::Rc;

/// Deterministic per-test random source.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed from a test name (FNV-1a) so every run is reproducible.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn range_usize(&mut self, lo: usize, hi_excl: usize) -> usize {
        self.0.random_range(lo..hi_excl)
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy (used by `prop_oneof!` to mix arm types).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> BoxedStrategy<T> {
    /// Erase a concrete strategy.
    pub fn new<S: Strategy<Value = T> + 'static>(s: S) -> Self {
        BoxedStrategy(Rc::new(move |rng| s.generate(rng)))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between same-typed strategies — the `prop_oneof!` engine.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.range_usize(0, self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.random_range(self.clone())
    }
}

/// Character-class string strategy: `[x-y]{n}` or `[x-y]{n,m}`; anything
/// else generates the pattern itself as a literal.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_char_class(self) {
            Some((lo, hi, min, max)) => {
                let len = if min == max {
                    min
                } else {
                    rng.range_usize(min, max + 1)
                };
                (0..len)
                    .map(|_| {
                        let span = (hi as u32 - lo as u32 + 1) as usize;
                        char::from_u32(lo as u32 + rng.range_usize(0, span) as u32).unwrap()
                    })
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

fn parse_char_class(pat: &str) -> Option<(char, char, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let (lo, dash, hi) = (chars.next()?, chars.next()?, chars.next()?);
    if dash != '-' || chars.next().is_some() || lo > hi {
        return None;
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = counts.parse().ok()?;
            (n, n)
        }
    };
    if min > max {
        return None;
    }
    Some((lo, hi, min, max))
}

/// Always produces a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite, roughly [-1e6, 1e6): plenty for numeric-property tests
        ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2e6
    }
}

/// Strategy generating any value of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Admissible size specifications for [`vec()`].
    pub trait SizeRange {
        /// Pick a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.range_usize(self.start, self.end)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.range_usize(*self.start(), *self.end() + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// Namespace mirror so `prop::collection::vec` resolves.
pub mod prop {
    pub use crate::collection;
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose,
        prop_oneof, proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Assert inside a property (alias of `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { assert!($($tt)+) };
}

/// Assert equality inside a property (alias of `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { assert_eq!($($tt)+) };
}

/// Assert inequality inside a property (alias of `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)+) => { assert_ne!($($tt)+) };
}

/// Uniform choice between strategies (weights unsupported by the shim).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::BoxedStrategy::new($arm)),+])
    };
}

/// Named composite strategy: `fn name()(bindings in strategies) -> T`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        fn $name:ident()($($arg:ident in $strat:expr),+ $(,)?) -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        fn $name() -> impl $crate::Strategy<Value = $out> {
            use $crate::Strategy as _;
            ($($strat,)+).prop_map(move |($($arg,)+)| $body)
        }
    };
}

/// Property-test block: deterministic cases, inputs reported on failure.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        @impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                let __strategy = ($($strat,)+);
                for __case in 0..__config.cases {
                    use $crate::Strategy as _;
                    let ($($arg,)+) = __strategy.generate(&mut __rng);
                    let __inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    let __outcome = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(__panic) = __outcome {
                        eprintln!(
                            "proptest shim: case #{} of {} failed with inputs:\n{}",
                            __case, stringify!($name), __inputs
                        );
                        std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_collections() {
        let mut rng = TestRng::from_name("t");
        for _ in 0..200 {
            let x = (2usize..6).generate(&mut rng);
            assert!((2..6).contains(&x));
            let v = collection::vec(0u8..3, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 3));
            let s = "[a-c]{1,2}".generate(&mut rng);
            assert!((1..=2).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::from_name("arms");
        let s = prop_oneof![(0i64..1).prop_map(|_| 0u8), (0i64..1).prop_map(|_| 1u8)];
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    prop_compose! {
        fn pair()(a in 0u8..10, b in 0u8..10) -> (u8, u8) { (a, b) }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn composed_pairs_in_range(p in pair(), flag in any::<bool>()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
            let _ = flag;
        }
    }
}
