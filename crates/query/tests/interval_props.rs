//! Property-based tests of predicate intervals and modification operations:
//! the monotonicity contracts the rewriting engines rely on.

use proptest::prelude::*;
use whyq_query::{Interval, PatternQuery, Predicate, QueryBuilder, QueryVertex, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-100i64..100).prop_map(Value::Int),
        (-100.0f64..100.0).prop_map(Value::Float),
        "[a-e]{1,2}".prop_map(Value::str),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Widening an interval never loses previously matching values.
    #[test]
    fn widen_is_monotone(
        vals in prop::collection::vec(arb_value(), 1..4),
        extra in arb_value(),
        probe in arb_value(),
    ) {
        let original = Interval::OneOf(vals);
        let mut widened = original.clone();
        widened.add_value(extra.clone());
        if original.matches(&probe) {
            prop_assert!(widened.matches(&probe));
        }
        prop_assert!(widened.matches(&extra));
    }

    /// Range widening is monotone; shrinking is antitone.
    #[test]
    fn range_widen_shrink_monotone(
        lo in -50.0f64..0.0,
        hi in 0.0f64..50.0,
        step in 0.1f64..10.0,
        probe in -60.0f64..60.0,
    ) {
        let original = Interval::between(lo, hi);
        let mut widened = original.clone();
        widened.widen(step);
        let mut shrunk = original.clone();
        let did_shrink = shrunk.shrink(step);
        let p = Value::Float(probe);
        if original.matches(&p) {
            prop_assert!(widened.matches(&p));
        }
        if did_shrink && shrunk.matches(&p) {
            prop_assert!(original.matches(&p));
        }
    }

    /// Interval distance: identity, symmetry, boundedness; widening moves
    /// the interval away from the original.
    #[test]
    fn interval_distance_properties(
        vals in prop::collection::vec(arb_value(), 1..4),
        extras in prop::collection::vec(arb_value(), 1..3),
    ) {
        let a = Interval::OneOf(vals);
        prop_assert!(a.distance(&a).abs() < 1e-12);
        let mut b = a.clone();
        let mut changed = false;
        for e in extras {
            changed |= b.add_value(e);
        }
        let d = a.distance(&b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((d - b.distance(&a)).abs() < 1e-12);
        if changed {
            prop_assert!(d > 0.0);
        }
    }

    /// Signatures are stable under predicate reordering but sensitive to
    /// value changes.
    #[test]
    fn signature_canonical(
        a in arb_value(),
        b in arb_value(),
    ) {
        let q1 = {
            let mut q = PatternQuery::new();
            q.add_vertex(QueryVertex::with([
                Predicate { attr: "x".into(), interval: Interval::OneOf(vec![a.clone()]) },
                Predicate { attr: "y".into(), interval: Interval::OneOf(vec![b.clone()]) },
            ]));
            q
        };
        let q2 = {
            let mut q = PatternQuery::new();
            q.add_vertex(QueryVertex::with([
                Predicate { attr: "y".into(), interval: Interval::OneOf(vec![b.clone()]) },
                Predicate { attr: "x".into(), interval: Interval::OneOf(vec![a.clone()]) },
            ]));
            q
        };
        prop_assert_eq!(
            whyq_query::signature::signature(&q1),
            whyq_query::signature::signature(&q2)
        );
    }

    /// The parser round-trips numeric equality predicates faithfully.
    #[test]
    fn parser_numeric_predicates(x in -1000i64..1000) {
        let text = format!("(a {{v = {x}}})");
        let q = whyq_query::parse_query(&text).unwrap();
        let v = q.vertex(whyq_query::QVid(0)).unwrap();
        prop_assert!(v.predicate("v").unwrap().interval.matches(&Value::Int(x)));
        prop_assert!(!v.predicate("v").unwrap().interval.matches(&Value::Int(x + 1)));
    }

    /// Builder and coarse relaxation: removing a predicate always yields a
    /// query whose signature differs and whose constraint count drops by 1.
    #[test]
    fn predicate_removal_effect(n in 1usize..4) {
        let mut b = QueryBuilder::new("q");
        for i in 0..n {
            b = b.vertex(&format!("v{i}"), [Predicate::eq("type", "t")]);
        }
        let q = b.build();
        let before = q.num_constraints();
        let m = whyq_query::GraphMod::RemovePredicate {
            target: whyq_query::Target::Vertex(whyq_query::QVid(0)),
            attr: "type".into(),
        };
        let (relaxed, _) = m.applied(&q).unwrap();
        prop_assert_eq!(relaxed.num_constraints(), before - 1);
        prop_assert_ne!(
            whyq_query::signature::signature(&q),
            whyq_query::signature::signature(&relaxed)
        );
    }
}
