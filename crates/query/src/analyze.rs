//! Static query analysis: satisfiability, dead-predicate elimination and
//! conflict diagnostics — the pass between parsing and compilation.
//!
//! The paper's premise is diagnosing empty answers, yet a whole class of
//! empty results is provable from the query text alone: contradictory
//! interval conjunctions (`age > 30 ∧ age < 20`), value constants the
//! graph's dictionary has never seen, attributes and edge types outside
//! the data domain. This module proves that class *before* any plan is
//! built or any candidate is scanned, and reports **which** constraints
//! conflict — the machine-readable conflict set the coarse rewriter seeds
//! its relaxation frontier with (PUG's constraint-level provenance is the
//! model: name the conflicting predicates, not just the emptiness).
//!
//! ## The pipeline
//!
//! `Session::prepare` runs `parse → validate → analyze → compile`:
//!
//! 1. [`analyze`] (pure) or [`analyze_against`] (with a sealed graph)
//!    rewrites the query into an equivalent *simplified* form — duplicate
//!    predicates on one `(element, attribute)` are merged by interval
//!    intersection, entailed predicates are dropped, disjunctions are
//!    deduplicated, predicate order is canonicalized — and collects a
//!    typed [`AnalysisReport`].
//! 2. An [`AnalysisReport::is_unsatisfiable`] verdict short-circuits
//!    compilation entirely: the prepared query answers "no matches" with
//!    zero candidate scans, and [`AnalysisReport::conflict_set`] names the
//!    predicates to relax first.
//! 3. Otherwise the *simplified* query is compiled; every rewrite rule is
//!    result-equivalence-tested against the naive oracle (the discipline
//!    of "Proving Cypher Query Equivalence"), so the compiled plan is
//!    valid for the original query.
//!
//! Simplification never renumbers or removes query elements — `QVid` /
//! `QEid` ids and the topology are preserved — so compiled plans, result
//! graphs and explanations keep referring to the caller's original
//! element ids.
//!
//! ## Diagnostic codes
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | [`DiagnosticCode::EmptyInterval`] | error | a single predicate interval admits no value (inverted or NaN-bounded range, empty disjunction) |
//! | [`DiagnosticCode::ContradictoryPredicates`] | error | the conjunction of an element's predicates on one attribute is empty |
//! | [`DiagnosticCode::UnknownAttribute`] | error | the attribute occurs nowhere in the graph |
//! | [`DiagnosticCode::UnknownConstant`] | warning / error | string constants absent from the value dictionary were pruned (error when the whole disjunction pruned away) |
//! | [`DiagnosticCode::UnknownEdgeType`] | warning / error | edge types absent from the graph were pruned (error when every named type is unknown) |
//! | [`DiagnosticCode::SubsumedPredicate`] | info | duplicate predicates merged; one of them entailed the rest |
//! | [`DiagnosticCode::MergedPredicates`] | info | duplicate predicates merged into a strictly tighter interval |
//! | [`DiagnosticCode::NoDirection`] | error | a query edge admits no direction |
//! | [`DiagnosticCode::DanglingEdge`] | error | a query edge references a removed vertex |
//! | [`DiagnosticCode::UnconstrainedComponent`] | info | a component carries no constraint at all — its seed is a full scan |

use crate::interval::Interval;
use crate::modification::Target;
use crate::predicate::Predicate;
use crate::query::{PatternQuery, QueryEdge};
use whyq_graph::{PropertyGraph, Value};

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// An equivalence-preserving simplification was applied; purely
    /// informational.
    Info,
    /// Part of a constraint was pruned (it could not match anything), but
    /// the query remains satisfiable.
    Warning,
    /// The element this diagnostic points at can match nothing — the whole
    /// query is unsatisfiable.
    Error,
}

/// Machine-readable classification of a [`Diagnostic`]. See the module
/// docs for the full code table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagnosticCode {
    /// A predicate interval admits no value on its own.
    EmptyInterval,
    /// Predicates on one `(element, attribute)` intersect to nothing.
    ContradictoryPredicates,
    /// The predicate's attribute occurs nowhere in the graph.
    UnknownAttribute,
    /// String constants absent from the value dictionary.
    UnknownConstant,
    /// Edge types absent from the graph.
    UnknownEdgeType,
    /// Duplicate predicates merged; the kept one entailed the others.
    SubsumedPredicate,
    /// Duplicate predicates merged into a strictly tighter interval.
    MergedPredicates,
    /// A query edge admits no direction.
    NoDirection,
    /// A query edge references a removed vertex.
    DanglingEdge,
    /// A weakly connected component carries no constraint at all.
    UnconstrainedComponent,
}

/// One analysis finding, anchored to a query element (and optionally one
/// of its attributes).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// What was found.
    pub code: DiagnosticCode,
    /// How serious it is; any [`Severity::Error`] makes the query
    /// unsatisfiable.
    pub severity: Severity,
    /// The query element the finding anchors to.
    pub locus: Target,
    /// The attribute of the offending predicate, for predicate-level
    /// findings.
    pub attr: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev}[{:?}] {}: {}", self.code, self.locus, self.message)
    }
}

/// The typed outcome of a static analysis pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    /// All findings, in query element order.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// True when analysis proved the query can match nothing — some
    /// diagnostic carries [`Severity::Error`].
    pub fn is_unsatisfiable(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The conflicting constraints behind an unsatisfiable verdict:
    /// `(element, attribute)` pairs of every error-level diagnostic
    /// (`attribute = None` for element-level conflicts such as an unknown
    /// edge type), deduplicated in discovery order. The coarse rewriter
    /// consumes this as its initial relaxation frontier — the first
    /// rewrites it tries discard exactly these constraints.
    pub fn conflict_set(&self) -> Vec<(Target, Option<String>)> {
        let mut out: Vec<(Target, Option<String>)> = Vec::new();
        for d in &self.diagnostics {
            if d.severity != Severity::Error {
                continue;
            }
            let key = (d.locus, d.attr.clone());
            if !out.contains(&key) {
                out.push(key);
            }
        }
        out
    }

    /// Diagnostics of exactly `severity`.
    pub fn with_severity(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }
}

/// The result of analyzing a query: an equivalent simplified query plus
/// the report of everything the pass found.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The simplified query. Result-equivalent to the input (on the graph
    /// analyzed against, for [`analyze_against`]), with identical element
    /// ids and topology — any plan compiled from it is valid for the
    /// original.
    pub query: PatternQuery,
    /// The findings.
    pub report: AnalysisReport,
}

/// Graph-independent analysis: merge and canonicalize predicates, detect
/// interval contradictions and structural defects. Everything reported
/// here holds for the query over *any* graph.
pub fn analyze(q: &PatternQuery) -> Analysis {
    analyze_impl(q, None)
}

/// Analysis against a sealed graph: everything [`analyze`] does, plus
/// domain checks against the graph's dictionaries — unknown attributes and
/// edge types, string constants the value dictionary has never seen
/// (generalizing the compiler's ad-hoc dictionary pruning into a reported,
/// typed pass). The simplified query is result-equivalent to the input
/// **on this graph**.
pub fn analyze_against(q: &PatternQuery, g: &PropertyGraph) -> Analysis {
    analyze_impl(q, Some(g))
}

fn analyze_impl(q: &PatternQuery, g: Option<&PropertyGraph>) -> Analysis {
    let mut out = q.clone();
    let mut diags = Vec::new();

    for v in q.vertex_ids() {
        let vx = out.vertex_mut(v).expect("live");
        simplify_predicates(&mut vx.predicates, Target::Vertex(v), g, &mut diags);
    }
    for e in q.edge_ids() {
        let dangling = {
            let ed = out.edge(e).expect("live");
            out.vertex(ed.src).is_none() || out.vertex(ed.dst).is_none()
        };
        let ed = out.edge_mut(e).expect("live");
        if dangling {
            diags.push(Diagnostic {
                code: DiagnosticCode::DanglingEdge,
                severity: Severity::Error,
                locus: Target::Edge(e),
                attr: None,
                message: format!("query edge {e} references a removed vertex"),
            });
        }
        if ed.directions.is_empty() {
            diags.push(Diagnostic {
                code: DiagnosticCode::NoDirection,
                severity: Severity::Error,
                locus: Target::Edge(e),
                attr: None,
                message: format!("query edge {e} admits no direction"),
            });
        }
        simplify_types(ed, e, g, &mut diags);
        simplify_predicates(&mut ed.predicates, Target::Edge(e), g, &mut diags);
    }
    if g.is_some() {
        flag_unconstrained_components(&out, &mut diags);
    }

    Analysis {
        query: out,
        report: AnalysisReport { diagnostics: diags },
    }
}

/// Merge, prune and canonicalize one element's predicate conjunction.
///
/// Order matters: dictionary pruning first (so a merge sees the values
/// that can actually occur), then per-attribute intersection, then the
/// emptiness checks, then the canonical sort. The rewritten conjunction
/// matches exactly the data elements the original matched — empty
/// intervals are *kept* (as the canonical `OneOf []`) rather than deleted,
/// because deleting a never-satisfied predicate would relax the query.
fn simplify_predicates(
    preds: &mut Vec<Predicate>,
    locus: Target,
    g: Option<&PropertyGraph>,
    diags: &mut Vec<Diagnostic>,
) {
    if let Some(g) = g {
        for p in preds.iter_mut() {
            if g.attr_symbol(&p.attr).is_none() {
                diags.push(Diagnostic {
                    code: DiagnosticCode::UnknownAttribute,
                    severity: Severity::Error,
                    locus,
                    attr: Some(p.attr.clone()),
                    message: format!(
                        "attribute {:?} occurs nowhere in the graph — predicate [{p}] can match nothing",
                        p.attr
                    ),
                });
            }
            prune_unknown_constants(p, locus, g, diags);
        }
    }

    // canonicalize each disjunction: duplicate values contribute nothing
    for p in preds.iter_mut() {
        if let Interval::OneOf(vals) = &mut p.interval {
            let mut seen: Vec<Value> = Vec::with_capacity(vals.len());
            vals.retain(|v| {
                if seen.contains(v) {
                    false
                } else {
                    seen.push(v.clone());
                    true
                }
            });
        }
    }

    // merge per attribute: conjunction = interval intersection
    let mut merged: Vec<Predicate> = Vec::with_capacity(preds.len());
    for p in preds.drain(..) {
        match merged.iter_mut().find(|m| m.attr == p.attr) {
            None => merged.push(p),
            Some(m) => {
                let conj = m.interval.intersect(&p.interval);
                let (code, detail) = if conj == m.interval || conj == p.interval {
                    (
                        DiagnosticCode::SubsumedPredicate,
                        "one predicate entails the other",
                    )
                } else {
                    (
                        DiagnosticCode::MergedPredicates,
                        "merged into a tighter interval",
                    )
                };
                let contradiction =
                    conj.is_vacuous() && !m.interval.is_vacuous() && !p.interval.is_vacuous();
                diags.push(Diagnostic {
                    code,
                    severity: Severity::Info,
                    locus,
                    attr: Some(m.attr.clone()),
                    message: format!("[{m}] ∧ [{p}] → [{conj}] ({detail})"),
                });
                if contradiction {
                    diags.push(Diagnostic {
                        code: DiagnosticCode::ContradictoryPredicates,
                        severity: Severity::Error,
                        locus,
                        attr: Some(m.attr.clone()),
                        message: format!(
                            "predicates on {:?} contradict each other: [{m}] ∧ [{p}] admits no value",
                            m.attr
                        ),
                    });
                }
                m.interval = conj;
            }
        }
    }
    *preds = merged;

    // single-predicate emptiness (merged contradictions were reported
    // above; avoid double-flagging the same locus/attr)
    for p in preds.iter() {
        if p.interval.is_vacuous()
            && !diags.iter().any(|d| {
                d.severity == Severity::Error
                    && d.locus == locus
                    && d.attr.as_deref() == Some(&p.attr)
            })
        {
            diags.push(Diagnostic {
                code: DiagnosticCode::EmptyInterval,
                severity: Severity::Error,
                locus,
                attr: Some(p.attr.clone()),
                message: format!("predicate [{p}] admits no value"),
            });
        }
    }

    // canonical order: one predicate per attribute now, so the attribute
    // name alone is a total key
    preds.sort_by(|a, b| a.attr.cmp(&b.attr));
}

/// Drop string constants the value dictionary has never seen from a
/// `OneOf` disjunction — no stored (always-encoded) string can equal them.
/// Mirrors the compiler's resolution fast path: a constant already encoded
/// by *this* graph's dictionary skips the hash probe.
fn prune_unknown_constants(
    p: &mut Predicate,
    locus: Target,
    g: &PropertyGraph,
    diags: &mut Vec<Diagnostic>,
) {
    let Interval::OneOf(vals) = &mut p.interval else {
        return;
    };
    if vals.is_empty() {
        return; // already empty; EmptyInterval will flag it
    }
    let mut dropped: Vec<String> = Vec::new();
    vals.retain(|v| {
        let known = match v {
            Value::Sym(sv) if sv.dict_id() == g.values().dict_id() => true,
            v => match v.as_str() {
                Some(text) => g.value_symbol(text).is_some(),
                // non-string constants never touch the dictionary
                None => true,
            },
        };
        if !known {
            dropped.push(format!("{v}"));
        }
        known
    });
    if dropped.is_empty() {
        return;
    }
    let all = vals.is_empty();
    diags.push(Diagnostic {
        code: DiagnosticCode::UnknownConstant,
        severity: if all {
            Severity::Error
        } else {
            Severity::Warning
        },
        locus,
        attr: Some(p.attr.clone()),
        message: if all {
            format!(
                "every constant of the {:?} disjunction ({}) is absent from the value dictionary — the predicate can match nothing",
                p.attr,
                dropped.join(", ")
            )
        } else {
            format!(
                "pruned {} constant(s) absent from the value dictionary from {:?}: {}",
                dropped.len(),
                p.attr,
                dropped.join(", ")
            )
        },
    });
}

/// Deduplicate an edge's type disjunction and (against a graph) prune
/// types the graph has never seen. A fully unknown disjunction is kept
/// as-is — an empty type list means "any type", which would *relax* the
/// edge — and reported as an error instead.
fn simplify_types(
    ed: &mut QueryEdge,
    e: crate::query::QEid,
    g: Option<&PropertyGraph>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut seen: Vec<String> = Vec::with_capacity(ed.types.len());
    ed.types.retain(|t| {
        if seen.contains(t) {
            false
        } else {
            seen.push(t.clone());
            true
        }
    });
    let Some(g) = g else {
        return;
    };
    if ed.types.is_empty() {
        return;
    }
    let unknown: Vec<String> = ed
        .types
        .iter()
        .filter(|t| g.type_symbol(t).is_none())
        .cloned()
        .collect();
    if unknown.is_empty() {
        return;
    }
    if unknown.len() == ed.types.len() {
        diags.push(Diagnostic {
            code: DiagnosticCode::UnknownEdgeType,
            severity: Severity::Error,
            locus: Target::Edge(e),
            attr: None,
            message: format!(
                "no admissible type of query edge {e} exists in the graph ({})",
                unknown.join(", ")
            ),
        });
    } else {
        ed.types.retain(|t| g.type_symbol(t).is_some());
        diags.push(Diagnostic {
            code: DiagnosticCode::UnknownEdgeType,
            severity: Severity::Warning,
            locus: Target::Edge(e),
            attr: None,
            message: format!(
                "pruned {} edge type(s) absent from the graph from query edge {e}: {}",
                unknown.len(),
                unknown.join(", ")
            ),
        });
    }
}

/// Flag weakly connected components that carry no constraint at all: every
/// seed source degenerates to a full vertex scan, and with more than one
/// such component the cartesian combination explodes. A performance
/// diagnostic, not a correctness one.
fn flag_unconstrained_components(q: &PatternQuery, diags: &mut Vec<Diagnostic>) {
    for comp in q.weakly_connected_components() {
        let constrained = comp.iter().any(|&v| {
            !q.vertex(v).expect("live").predicates.is_empty()
                || q.incident_edges(v).iter().any(|&e| {
                    let ed = q.edge(e).expect("live");
                    !ed.types.is_empty() || !ed.predicates.is_empty()
                })
        });
        if !constrained {
            let anchor = comp[0];
            diags.push(Diagnostic {
                code: DiagnosticCode::UnconstrainedComponent,
                severity: Severity::Info,
                locus: Target::Vertex(anchor),
                attr: None,
                message: format!(
                    "the component of {anchor} carries no constraint — its seed is a full vertex scan"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use crate::query::{QEid, QVid, QueryVertex};

    fn small_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let p1 = g.add_vertex([("type", Value::str("person")), ("age", Value::Int(25))]);
        let p2 = g.add_vertex([("type", Value::str("person")), ("age", Value::Int(40))]);
        let c = g.add_vertex([("type", Value::str("city"))]);
        g.add_edge(p1, p2, "knows", []);
        g.add_edge(p1, c, "livesIn", []);
        g.seal();
        g
    }

    fn contradictory() -> PatternQuery {
        let mut q = PatternQuery::named("contra");
        q.add_vertex(QueryVertex::with([
            Predicate::eq("type", "person"),
            Predicate::at_least("age", 31.0),
            Predicate::at_most("age", 20.0),
        ]));
        q
    }

    #[test]
    fn contradictory_conjunction_is_unsatisfiable() {
        let a = analyze(&contradictory());
        assert!(a.report.is_unsatisfiable());
        let conflicts = a.report.conflict_set();
        assert_eq!(
            conflicts,
            vec![(Target::Vertex(QVid(0)), Some("age".to_string()))]
        );
        // the merged predicate stays in the simplified query (dropping it
        // would relax the conjunction) and is vacuous
        let vx = a.query.vertex(QVid(0)).unwrap();
        assert_eq!(vx.predicates.len(), 2, "age predicates merged into one");
        assert!(vx.predicate("age").unwrap().interval.is_vacuous());
    }

    #[test]
    fn overlapping_ranges_merge_without_error() {
        let mut q = PatternQuery::new();
        q.add_vertex(QueryVertex::with([
            Predicate::at_least("age", 18.0),
            Predicate::at_most("age", 65.0),
            Predicate::between("age", 0.0, 30.0),
        ]));
        let a = analyze(&q);
        assert!(!a.report.is_unsatisfiable());
        let vx = a.query.vertex(QVid(0)).unwrap();
        assert_eq!(vx.predicates.len(), 1);
        assert_eq!(
            vx.predicates[0].interval,
            Interval::between(18.0, 30.0),
            "conjunction tightened to the common range"
        );
        assert!(a
            .report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagnosticCode::MergedPredicates));
    }

    #[test]
    fn duplicate_predicate_is_subsumed() {
        let mut q = PatternQuery::new();
        q.add_vertex(QueryVertex::with([
            Predicate::eq("type", "person"),
            Predicate::eq("type", "person"),
        ]));
        let a = analyze(&q);
        assert!(!a.report.is_unsatisfiable());
        assert_eq!(a.query.vertex(QVid(0)).unwrap().predicates.len(), 1);
        assert!(a
            .report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagnosticCode::SubsumedPredicate));
    }

    #[test]
    fn predicate_order_is_canonicalized() {
        let mut q1 = PatternQuery::new();
        q1.add_vertex(QueryVertex::with([
            Predicate::eq("b", 2),
            Predicate::eq("a", 1),
        ]));
        let mut q2 = PatternQuery::new();
        q2.add_vertex(QueryVertex::with([
            Predicate::eq("a", 1),
            Predicate::eq("b", 2),
        ]));
        assert_eq!(analyze(&q1).query, analyze(&q2).query);
    }

    #[test]
    fn unknown_attribute_and_constant_against_graph() {
        let g = small_graph();
        let q = QueryBuilder::new("q")
            .vertex("a", [Predicate::eq("nonexistent", 1)])
            .build();
        let a = analyze_against(&q, &g);
        assert!(a.report.is_unsatisfiable());
        assert!(a
            .report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagnosticCode::UnknownAttribute));

        // fully pruned disjunction: error; partially pruned: warning
        let q2 = QueryBuilder::new("q2")
            .vertex("a", [Predicate::eq("type", "robot")])
            .build();
        let a2 = analyze_against(&q2, &g);
        assert!(a2.report.is_unsatisfiable());
        assert_eq!(
            a2.report.conflict_set(),
            vec![(Target::Vertex(QVid(0)), Some("type".to_string()))]
        );

        let q3 = QueryBuilder::new("q3")
            .vertex("a", [Predicate::one_of("type", ["robot", "city"])])
            .build();
        let a3 = analyze_against(&q3, &g);
        assert!(!a3.report.is_unsatisfiable());
        assert_eq!(
            a3.query.vertex(QVid(0)).unwrap().predicates[0].interval,
            Interval::one_of(["city"]),
            "unknown constant pruned, known one kept"
        );
        assert!(a3
            .report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagnosticCode::UnknownConstant && d.severity == Severity::Warning));
    }

    #[test]
    fn unknown_edge_types_against_graph() {
        let g = small_graph();
        let mut q = PatternQuery::new();
        let a = q.add_vertex(QueryVertex::any());
        let b = q.add_vertex(QueryVertex::any());
        let mut e = QueryEdge::typed(a, b, "teleportsTo");
        e.types.push("knows".into());
        q.add_edge(e);
        let an = analyze_against(&q, &g);
        assert!(!an.report.is_unsatisfiable());
        assert_eq!(
            an.query.edge(QEid(0)).unwrap().types,
            vec!["knows".to_string()],
            "unknown type pruned from the disjunction"
        );

        // all types unknown: error, and the list is preserved (an empty
        // list would mean "any type" — a relaxation)
        let mut q2 = PatternQuery::new();
        let a2 = q2.add_vertex(QueryVertex::any());
        let b2 = q2.add_vertex(QueryVertex::any());
        q2.add_edge(QueryEdge::typed(a2, b2, "teleportsTo"));
        let an2 = analyze_against(&q2, &g);
        assert!(an2.report.is_unsatisfiable());
        assert_eq!(
            an2.query.edge(QEid(0)).unwrap().types,
            vec!["teleportsTo".to_string()]
        );
        assert_eq!(
            an2.report.conflict_set(),
            vec![(Target::Edge(QEid(0)), None)]
        );
    }

    #[test]
    fn empty_and_nan_intervals_are_errors() {
        let mut q = PatternQuery::new();
        q.add_vertex(QueryVertex::with([Predicate {
            attr: "x".into(),
            interval: Interval::OneOf(vec![]),
        }]));
        let a = analyze(&q);
        assert!(a.report.is_unsatisfiable());
        assert!(a
            .report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagnosticCode::EmptyInterval));

        let mut q2 = PatternQuery::new();
        q2.add_vertex(QueryVertex::with([Predicate::at_least("x", f64::NAN)]));
        assert!(analyze(&q2).report.is_unsatisfiable());
    }

    #[test]
    fn structural_diagnostics() {
        let g = small_graph();
        // no direction
        let mut q = PatternQuery::new();
        let a = q.add_vertex(QueryVertex::any());
        let b = q.add_vertex(QueryVertex::any());
        let mut ed = QueryEdge::typed(a, b, "knows");
        ed.directions = crate::direction::DirectionSet {
            forward: false,
            backward: false,
        };
        q.add_edge(ed);
        let an = analyze_against(&q, &g);
        assert!(an
            .report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagnosticCode::NoDirection));

        // unconstrained component
        let mut q2 = PatternQuery::new();
        q2.add_vertex(QueryVertex::any());
        let an2 = analyze_against(&q2, &g);
        assert!(!an2.report.is_unsatisfiable());
        assert!(an2
            .report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagnosticCode::UnconstrainedComponent));
    }

    #[test]
    fn satisfiable_queries_pass_untouched() {
        let g = small_graph();
        let q = QueryBuilder::new("ok")
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("p", "c", "livesIn")
            .build();
        let a = analyze_against(&q, &g);
        assert!(!a.report.is_unsatisfiable());
        assert_eq!(a.query, q, "nothing to simplify");
        assert!(a.report.diagnostics.is_empty());
    }

    #[test]
    fn simplification_preserves_ids_and_topology() {
        let g = small_graph();
        let q = QueryBuilder::new("ids")
            .vertex(
                "p",
                [
                    Predicate::eq("type", "person"),
                    Predicate::at_least("age", 30.0),
                    Predicate::at_most("age", 50.0),
                ],
            )
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("p", "c", "livesIn")
            .build();
        let a = analyze_against(&q, &g);
        assert_eq!(a.query.vertex_slots(), q.vertex_slots());
        assert_eq!(a.query.edge_slots(), q.edge_slots());
        assert_eq!(
            a.query.vertex_ids().collect::<Vec<_>>(),
            q.vertex_ids().collect::<Vec<_>>()
        );
        assert_eq!(
            a.query.edge_ids().collect::<Vec<_>>(),
            q.edge_ids().collect::<Vec<_>>()
        );
        let e = a.query.edge(QEid(0)).unwrap();
        assert_eq!((e.src, e.dst), (QVid(0), QVid(1)));
    }
}
