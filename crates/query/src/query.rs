//! The pattern query graph.
//!
//! `PatternQuery` is a property graph over *predicates*: vertices constrain
//! data vertices, edges constrain data edges (type disjunction, direction
//! set, attribute predicates) and the topology constrains how matched data
//! elements connect. Identifiers of query vertices/edges are **stable**:
//! removing an element leaves a tombstone, so an explanation derived from a
//! query keeps referring to the original element ids — exactly what the
//! set-based comparison of §3.2.2 requires.

use crate::direction::DirectionSet;
use crate::predicate::Predicate;
use std::collections::VecDeque;

/// Identifier of a query vertex (stable across modifications).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QVid(pub u32);

/// Identifier of a query edge (stable across modifications).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QEid(pub u32);

impl std::fmt::Display for QVid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0 + 1)
    }
}

impl std::fmt::Display for QEid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0 + 1)
    }
}

/// A query vertex: a conjunction of attribute predicates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryVertex {
    /// Attribute predicates (all must hold).
    pub predicates: Vec<Predicate>,
    /// Optional human-readable label for displays.
    pub label: Option<String>,
}

impl QueryVertex {
    /// Vertex with no constraints.
    pub fn any() -> Self {
        Self::default()
    }

    /// Vertex from a list of predicates.
    pub fn with(predicates: impl IntoIterator<Item = Predicate>) -> Self {
        QueryVertex {
            predicates: predicates.into_iter().collect(),
            label: None,
        }
    }

    /// Attach a display label.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Find a predicate by attribute name.
    pub fn predicate(&self, attr: &str) -> Option<&Predicate> {
        self.predicates.iter().find(|p| p.attr == attr)
    }

    /// Find a predicate by attribute name, mutably.
    pub fn predicate_mut(&mut self, attr: &str) -> Option<&mut Predicate> {
        self.predicates.iter_mut().find(|p| p.attr == attr)
    }
}

/// A query edge: endpoints, type disjunction, direction set and predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryEdge {
    /// Source query vertex.
    pub src: QVid,
    /// Target query vertex.
    pub dst: QVid,
    /// Admissible edge types (disjunction, eq. 3.7). Empty = any type.
    pub types: Vec<String>,
    /// Admissible directions.
    pub directions: DirectionSet,
    /// Attribute predicates (all must hold).
    pub predicates: Vec<Predicate>,
    /// Optional human-readable label.
    pub label: Option<String>,
}

impl QueryEdge {
    /// Forward edge of one type, no attribute predicates.
    pub fn typed(src: QVid, dst: QVid, ty: impl Into<String>) -> Self {
        QueryEdge {
            src,
            dst,
            types: vec![ty.into()],
            directions: DirectionSet::FORWARD,
            predicates: Vec::new(),
            label: None,
        }
    }

    /// Add an attribute predicate (builder style).
    pub fn with_predicate(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }

    /// Replace the direction set (builder style).
    pub fn with_directions(mut self, d: DirectionSet) -> Self {
        self.directions = d;
        self
    }

    /// Find a predicate by attribute name.
    pub fn predicate(&self, attr: &str) -> Option<&Predicate> {
        self.predicates.iter().find(|p| p.attr == attr)
    }

    /// Find a predicate by attribute name, mutably.
    pub fn predicate_mut(&mut self, attr: &str) -> Option<&mut Predicate> {
        self.predicates.iter_mut().find(|p| p.attr == attr)
    }

    /// The endpoint other than `v` (self-loops return `v`).
    pub fn other(&self, v: QVid) -> QVid {
        if self.src == v {
            self.dst
        } else {
            self.src
        }
    }

    /// Does the edge touch `v`?
    pub fn touches(&self, v: QVid) -> bool {
        self.src == v || self.dst == v
    }
}

/// A pattern-matching query: a small property graph of predicates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PatternQuery {
    /// Optional query name (e.g. `"LDBC QUERY 1"`).
    pub name: Option<String>,
    vertices: Vec<Option<QueryVertex>>,
    edges: Vec<Option<QueryEdge>>,
}

impl PatternQuery {
    /// Empty query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty query with a name.
    pub fn named(name: impl Into<String>) -> Self {
        PatternQuery {
            name: Some(name.into()),
            ..Self::default()
        }
    }

    // ------------------------------------------------------------------
    // construction / mutation
    // ------------------------------------------------------------------

    /// Add a vertex; returns its stable id.
    pub fn add_vertex(&mut self, v: QueryVertex) -> QVid {
        let id = QVid(u32::try_from(self.vertices.len()).expect("query vertex overflow"));
        self.vertices.push(Some(v));
        id
    }

    /// Add an edge; returns its stable id.
    ///
    /// # Panics
    /// Panics if an endpoint does not exist (a construction bug, not a
    /// recoverable state).
    pub fn add_edge(&mut self, e: QueryEdge) -> QEid {
        assert!(self.vertex(e.src).is_some(), "edge source missing");
        assert!(self.vertex(e.dst).is_some(), "edge target missing");
        let id = QEid(u32::try_from(self.edges.len()).expect("query edge overflow"));
        self.edges.push(Some(e));
        id
    }

    /// Remove an edge, returning its payload if it was live.
    pub fn remove_edge(&mut self, e: QEid) -> Option<QueryEdge> {
        self.edges.get_mut(e.0 as usize).and_then(Option::take)
    }

    /// Remove a vertex and all incident edges; returns the vertex payload
    /// and the removed edges.
    pub fn remove_vertex(&mut self, v: QVid) -> Option<(QueryVertex, Vec<(QEid, QueryEdge)>)> {
        let payload = self.vertices.get_mut(v.0 as usize).and_then(Option::take)?;
        let mut removed = Vec::new();
        for i in 0..self.edges.len() {
            let touches = self.edges[i].as_ref().is_some_and(|e| e.touches(v));
            if touches {
                let e = self.edges[i].take().expect("checked live");
                removed.push((QEid(i as u32), e));
            }
        }
        Some((payload, removed))
    }

    /// Re-insert a vertex payload at a specific (tombstoned) id slot.
    /// Used to restore previously removed elements with identical ids.
    pub fn restore_vertex(&mut self, id: QVid, v: QueryVertex) {
        let slot = &mut self.vertices[id.0 as usize];
        assert!(slot.is_none(), "restoring over a live vertex");
        *slot = Some(v);
    }

    /// Re-insert an edge payload at a specific (tombstoned) id slot.
    pub fn restore_edge(&mut self, id: QEid, e: QueryEdge) {
        assert!(self.vertex(e.src).is_some() && self.vertex(e.dst).is_some());
        let slot = &mut self.edges[id.0 as usize];
        assert!(slot.is_none(), "restoring over a live edge");
        *slot = Some(e);
    }

    // ------------------------------------------------------------------
    // accessors
    // ------------------------------------------------------------------

    /// Vertex payload, if live.
    pub fn vertex(&self, v: QVid) -> Option<&QueryVertex> {
        self.vertices.get(v.0 as usize).and_then(Option::as_ref)
    }

    /// Mutable vertex payload, if live.
    pub fn vertex_mut(&mut self, v: QVid) -> Option<&mut QueryVertex> {
        self.vertices.get_mut(v.0 as usize).and_then(Option::as_mut)
    }

    /// Edge payload, if live.
    pub fn edge(&self, e: QEid) -> Option<&QueryEdge> {
        self.edges.get(e.0 as usize).and_then(Option::as_ref)
    }

    /// Mutable edge payload, if live.
    pub fn edge_mut(&mut self, e: QEid) -> Option<&mut QueryEdge> {
        self.edges.get_mut(e.0 as usize).and_then(Option::as_mut)
    }

    /// Live vertex ids in id order.
    pub fn vertex_ids(&self) -> impl Iterator<Item = QVid> + '_ {
        self.vertices
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|_| QVid(i as u32)))
    }

    /// Live edge ids in id order.
    pub fn edge_ids(&self) -> impl Iterator<Item = QEid> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|_| QEid(i as u32)))
    }

    /// Number of live vertices `N_q`.
    pub fn num_vertices(&self) -> usize {
        self.vertices.iter().flatten().count()
    }

    /// Number of live edges `M_q`.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().flatten().count()
    }

    /// Highest ever assigned vertex slot count (including tombstones).
    pub fn vertex_slots(&self) -> usize {
        self.vertices.len()
    }

    /// Highest ever assigned edge slot count (including tombstones).
    pub fn edge_slots(&self) -> usize {
        self.edges.len()
    }

    /// Ids of live edges leaving `v` (query drawing direction).
    pub fn out_edges(&self, v: QVid) -> Vec<QEid> {
        self.edge_ids()
            .filter(|&e| self.edge(e).is_some_and(|ed| ed.src == v))
            .collect()
    }

    /// Ids of live edges entering `v` (query drawing direction).
    pub fn in_edges(&self, v: QVid) -> Vec<QEid> {
        self.edge_ids()
            .filter(|&e| self.edge(e).is_some_and(|ed| ed.dst == v))
            .collect()
    }

    /// Ids of live edges touching `v`.
    pub fn incident_edges(&self, v: QVid) -> Vec<QEid> {
        self.edge_ids()
            .filter(|&e| self.edge(e).is_some_and(|ed| ed.touches(v)))
            .collect()
    }

    /// Degree of a live vertex (self-loops count twice).
    pub fn degree(&self, v: QVid) -> usize {
        self.edge_ids()
            .filter_map(|e| self.edge(e))
            .map(|ed| usize::from(ed.src == v) + usize::from(ed.dst == v))
            .sum()
    }

    /// Total number of constraints: predicates on vertices and edges plus
    /// one per typed edge. Used by evaluation sweeps over query size.
    pub fn num_constraints(&self) -> usize {
        let vp: usize = self
            .vertex_ids()
            .filter_map(|v| self.vertex(v))
            .map(|v| v.predicates.len())
            .sum();
        let ep: usize = self
            .edge_ids()
            .filter_map(|e| self.edge(e))
            .map(|e| e.predicates.len() + usize::from(!e.types.is_empty()))
            .sum();
        vp + ep
    }

    // ------------------------------------------------------------------
    // topology analysis
    // ------------------------------------------------------------------

    /// Weakly connected components over live vertices (BFS discovery order
    /// inside a component; components ordered by smallest vertex id).
    pub fn weakly_connected_components(&self) -> Vec<Vec<QVid>> {
        let mut seen: Vec<bool> = vec![false; self.vertices.len()];
        let mut comps = Vec::new();
        for start in self.vertex_ids() {
            if seen[start.0 as usize] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::new();
            seen[start.0 as usize] = true;
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                comp.push(v);
                for e in self.incident_edges(v) {
                    let w = self.edge(e).expect("live").other(v);
                    if !seen[w.0 as usize] {
                        seen[w.0 as usize] = true;
                        queue.push_back(w);
                    }
                }
            }
            comps.push(comp);
        }
        comps
    }

    /// True when all live vertices belong to one weakly connected component
    /// (the empty query counts as connected).
    pub fn is_connected(&self) -> bool {
        self.weakly_connected_components().len() <= 1
    }

    /// The subquery induced by a set of vertices: keeps those vertices and
    /// all live edges between them, **preserving original ids**.
    pub fn induced_subquery(&self, keep: &[QVid]) -> PatternQuery {
        let mut q = PatternQuery {
            name: self.name.clone(),
            vertices: vec![None; self.vertices.len()],
            edges: vec![None; self.edges.len()],
        };
        for &v in keep {
            if let Some(p) = self.vertex(v) {
                q.vertices[v.0 as usize] = Some(p.clone());
            }
        }
        for e in self.edge_ids() {
            let ed = self.edge(e).expect("live");
            if q.vertices[ed.src.0 as usize].is_some() && q.vertices[ed.dst.0 as usize].is_some() {
                q.edges[e.0 as usize] = Some(ed.clone());
            }
        }
        q
    }

    /// The subquery consisting of the given edges and their endpoints,
    /// preserving original ids.
    pub fn edge_subquery(&self, keep: &[QEid]) -> PatternQuery {
        let mut q = PatternQuery {
            name: self.name.clone(),
            vertices: vec![None; self.vertices.len()],
            edges: vec![None; self.edges.len()],
        };
        for &e in keep {
            if let Some(ed) = self.edge(e) {
                q.vertices[ed.src.0 as usize] = Some(self.vertex(ed.src).expect("live").clone());
                q.vertices[ed.dst.0 as usize] = Some(self.vertex(ed.dst).expect("live").clone());
                q.edges[e.0 as usize] = Some(ed.clone());
            }
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;

    fn triangle() -> (PatternQuery, [QVid; 3], [QEid; 3]) {
        let mut q = PatternQuery::named("tri");
        let a = q.add_vertex(QueryVertex::with([Predicate::eq("type", "person")]));
        let b = q.add_vertex(QueryVertex::with([Predicate::eq("type", "person")]));
        let c = q.add_vertex(QueryVertex::with([Predicate::eq("type", "city")]));
        let e1 = q.add_edge(QueryEdge::typed(a, b, "knows"));
        let e2 = q.add_edge(QueryEdge::typed(a, c, "livesIn"));
        let e3 = q.add_edge(QueryEdge::typed(b, c, "livesIn"));
        (q, [a, b, c], [e1, e2, e3])
    }

    #[test]
    fn stable_ids_after_removal() {
        let (mut q, [a, b, c], [e1, _, e3]) = triangle();
        q.remove_edge(e1);
        assert!(q.edge(e1).is_none());
        assert!(q.edge(e3).is_some());
        assert_eq!(q.num_edges(), 2);
        // removing vertex c removes both livesIn edges
        let (_, removed) = q.remove_vertex(c).unwrap();
        assert_eq!(removed.len(), 2);
        assert_eq!(q.num_edges(), 0);
        assert_eq!(q.num_vertices(), 2);
        // a and b keep their ids
        assert!(q.vertex(a).is_some());
        assert!(q.vertex(b).is_some());
    }

    #[test]
    fn restore_round_trips() {
        let (mut q, [_, _, c], _) = triangle();
        let (payload, removed) = q.remove_vertex(c).unwrap();
        q.restore_vertex(c, payload);
        for (id, e) in removed {
            q.restore_edge(id, e);
        }
        assert_eq!(q.num_edges(), 3);
        assert_eq!(q.num_vertices(), 3);
    }

    #[test]
    fn adjacency_queries() {
        let (q, [a, b, c], [e1, e2, e3]) = triangle();
        assert_eq!(q.out_edges(a), vec![e1, e2]);
        assert_eq!(q.in_edges(c), vec![e2, e3]);
        assert_eq!(q.incident_edges(b), vec![e1, e3]);
        assert_eq!(q.degree(a), 2);
        assert_eq!(q.edge(e1).unwrap().other(a), b);
    }

    /// A self-loop query edge touches its vertex at both endpoints but is
    /// one edge: `incident_edges` must yield it exactly once (the MCS
    /// traversal planners union these lists per component and count
    /// component edges from them), while `degree` keeps the standard
    /// convention of counting both endpoints.
    #[test]
    fn self_loop_incident_once_degree_twice() {
        let mut q = PatternQuery::new();
        let v = q.add_vertex(QueryVertex::any());
        let w = q.add_vertex(QueryVertex::any());
        let looped = q.add_edge(QueryEdge::typed(v, v, "self"));
        let out = q.add_edge(QueryEdge::typed(v, w, "t"));
        assert_eq!(q.incident_edges(v), vec![looped, out]);
        assert_eq!(q.degree(v), 3);
        assert_eq!(q.out_edges(v), vec![looped, out]);
        assert_eq!(q.in_edges(v), vec![looped]);
    }

    #[test]
    fn connectivity() {
        let (mut q, _, [e1, e2, e3]) = triangle();
        assert!(q.is_connected());
        q.remove_edge(e1);
        assert!(q.is_connected());
        q.remove_edge(e2);
        q.remove_edge(e3);
        assert_eq!(q.weakly_connected_components().len(), 3);
        assert!(!q.is_connected());
    }

    #[test]
    fn induced_subquery_preserves_ids() {
        let (q, [a, b, c], [e1, ..]) = triangle();
        let sub = q.induced_subquery(&[a, b]);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(sub.num_edges(), 1);
        assert!(sub.edge(e1).is_some());
        assert!(sub.vertex(c).is_none());
    }

    #[test]
    fn edge_subquery_includes_endpoints() {
        let (q, [a, _, c], [_, e2, _]) = triangle();
        let sub = q.edge_subquery(&[e2]);
        assert_eq!(sub.num_vertices(), 2);
        assert!(sub.vertex(a).is_some());
        assert!(sub.vertex(c).is_some());
        assert_eq!(sub.num_edges(), 1);
    }

    #[test]
    fn constraint_count() {
        let (q, ..) = triangle();
        // 3 vertex predicates + 3 typed edges
        assert_eq!(q.num_constraints(), 6);
    }

    #[test]
    fn self_loop_degree() {
        let mut q = PatternQuery::new();
        let v = q.add_vertex(QueryVertex::any());
        q.add_edge(QueryEdge::typed(v, v, "self"));
        assert_eq!(q.degree(v), 2);
        assert!(q.is_connected());
    }
}
