//! # whyq-query — set-based pattern-query model
//!
//! Implements the query model of §3.2.2 (Fig. 3.3) of *"Why-Query Support in
//! Graph Databases"*: a pattern-matching query is itself a property graph
//! whose elements are **sets**,
//!
//! ```text
//! Q = V_q ∪ E_q
//! v_q = PI(v) ∪ IN(v) ∪ OUT(v)                    (eq. 3.3)
//! e_q = T(e) ∪ v_s ∪ v_t ∪ PI(e) ∪ D(e)          (eq. 3.5)
//! ```
//!
//! where `PI` are predicate intervals (disjunctions of attribute values or
//! numeric ranges, eq. 3.2), `T` is a disjunction of edge types (eq. 3.7)
//! and `D` a set of admissible directions. Every query vertex and edge has a
//! numeric identifier that is **stable under modification** — the identifier
//! is what the syntactic distance (§3.2.2) and result distance (§3.2.4)
//! compare across an original query and its explanations.
//!
//! The crate also provides the graph-edit *modification operations* for
//! property graphs (Table 3.1 and the complex operations of Fig. 3.2), which
//! the modification-based explanation generators in `whyq-core` apply.
//!
//! The [`mod@analyze`] module is the static-analysis stage of the
//! `parse → validate → analyze → compile` pipeline run by
//! `whyq_session::Session::prepare`: satisfiability (interval
//! contradictions, dictionary-pruned disjunctions), dead-predicate
//! elimination, and structural checks, reported as typed
//! [`Diagnostic`]s whose error-level loci form the conflict set the
//! relaxation loop seeds from. See the module docs for the diagnostic
//! code table.

// The whole workspace is unsafe-free (audited 2026-08): lock it in.
#![forbid(unsafe_code)]
// Every public item documents itself; CI's docs lane denies this warning.
#![warn(missing_docs)]

pub mod analyze;
pub mod builder;
pub mod complex;
pub mod delta;
pub mod direction;
pub mod interval;
pub mod modification;
pub mod parser;
pub mod predicate;
pub mod query;
pub mod signature;

pub use analyze::{
    analyze, analyze_against, Analysis, AnalysisReport, Diagnostic, DiagnosticCode, Severity,
};
pub use builder::QueryBuilder;
pub use complex::ComplexOp;
pub use delta::{component_signature, shape_hash, shape_signature, DeltaKind, QueryDelta};
pub use direction::{Direction, DirectionSet};
pub use interval::Interval;
pub use modification::{GraphMod, ModError, ModKind, Receipt, Target};
pub use parser::{parse_query, ParseError};
pub use predicate::Predicate;
pub use query::{PatternQuery, QEid, QVid, QueryEdge, QueryVertex};

pub use whyq_graph::Value;
