//! Predicate intervals — the value sets attached to query predicates.
//!
//! A predicate interval `pi = pv₁ ∨ pv₂ ∨ … ∨ pvₙ` (eq. 3.2) describes the
//! set of values an attribute may take. Two physical representations exist:
//!
//! * [`Interval::OneOf`] — an explicit disjunction of values, used for
//!   categorical attributes (`name = "Anna" OR "Alice"`), and
//! * [`Interval::Range`] — a numeric interval with optional bounds, used for
//!   continuous attributes (`1 < age < 4`).
//!
//! Intervals are *compared as sets* (Def. 4, modified Hausdorff distance with
//! Boolean point-point distances, which reduces to
//! `max(|A∖B|/|A|, |B∖A|/|B|)`); for ranges the set size is the measure
//! (length) of the interval.

use whyq_graph::Value;

/// Width used in place of an unbounded range side when a measure is needed.
const UNBOUNDED_CLAMP: f64 = 1.0e12;

/// The value set of a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Interval {
    /// Explicit disjunction of admissible values.
    OneOf(Vec<Value>),
    /// Numeric range; `None` bounds are unbounded. `lo_incl`/`hi_incl`
    /// select closed vs open endpoints.
    Range {
        /// Lower bound, if any.
        lo: Option<f64>,
        /// Upper bound, if any.
        hi: Option<f64>,
        /// Whether the lower bound itself is admissible.
        lo_incl: bool,
        /// Whether the upper bound itself is admissible.
        hi_incl: bool,
    },
}

impl Interval {
    /// Single admissible value.
    pub fn eq(v: impl Into<Value>) -> Self {
        Interval::OneOf(vec![v.into()])
    }

    /// Disjunction of admissible values.
    pub fn one_of<I, V>(vals: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Interval::OneOf(vals.into_iter().map(Into::into).collect())
    }

    /// Closed numeric range `[lo, hi]`.
    pub fn between(lo: f64, hi: f64) -> Self {
        Interval::Range {
            lo: Some(lo),
            hi: Some(hi),
            lo_incl: true,
            hi_incl: true,
        }
    }

    /// Open-ended range `≥ lo`.
    pub fn at_least(lo: f64) -> Self {
        Interval::Range {
            lo: Some(lo),
            hi: None,
            lo_incl: true,
            hi_incl: false,
        }
    }

    /// Open-ended range `≤ hi`.
    pub fn at_most(hi: f64) -> Self {
        Interval::Range {
            lo: None,
            hi: Some(hi),
            lo_incl: false,
            hi_incl: true,
        }
    }

    /// Does `value` satisfy this interval?
    ///
    /// NaN semantics are pinned (see `whyq_graph::value`): a NaN attribute
    /// value matches **no** `Range`, whatever its bounds — NaN's
    /// `total_cmp` sort position above `+∞` is a storage artifact that
    /// must not leak into ordering predicates. A NaN *bound* likewise
    /// admits nothing on its side. Only an explicit NaN inside a `OneOf`
    /// matches a NaN value (identity membership, not ordering).
    pub fn matches(&self, value: &Value) -> bool {
        match self {
            Interval::OneOf(vals) => vals.iter().any(|v| v == value),
            Interval::Range {
                lo,
                hi,
                lo_incl,
                hi_incl,
            } => {
                let Some(x) = value.as_f64() else {
                    return false;
                };
                if x.is_nan() {
                    return false;
                }
                let lo_ok = match lo {
                    Some(l) => {
                        if *lo_incl {
                            x >= *l
                        } else {
                            x > *l
                        }
                    }
                    None => true,
                };
                let hi_ok = match hi {
                    Some(h) => {
                        if *hi_incl {
                            x <= *h
                        } else {
                            x < *h
                        }
                    }
                    None => true,
                };
                lo_ok && hi_ok
            }
        }
    }

    /// Is the interval trivially empty (no value can satisfy it)?
    pub fn is_empty(&self) -> bool {
        match self {
            Interval::OneOf(vals) => vals.is_empty(),
            Interval::Range {
                lo: Some(l),
                hi: Some(h),
                lo_incl,
                hi_incl,
            } => {
                if l > h {
                    true
                } else {
                    l == h && !(*lo_incl && *hi_incl)
                }
            }
            Interval::Range { .. } => false,
        }
    }

    /// Is the interval empty for *every* possible value, including the
    /// NaN-bounded ranges that [`Interval::is_empty`] deliberately leaves
    /// alone (a NaN bound admits nothing on its side — see the pinned NaN
    /// semantics above — so such a range matches no value even though its
    /// bounds do not invert). This is the emptiness test static analysis
    /// and the compiler's unsatisfiability check agree on.
    pub fn is_vacuous(&self) -> bool {
        if let Interval::Range { lo, hi, .. } = self {
            if lo.is_some_and(f64::is_nan) || hi.is_some_and(f64::is_nan) {
                return true;
            }
        }
        self.is_empty()
    }

    /// The conjunction `self ∧ other` as a single interval: an interval
    /// matching exactly the values both inputs match.
    ///
    /// * `OneOf ∧ OneOf` — set intersection (by [`whyq_graph::Value`]
    ///   equality, which equates dictionary-encoded and plain strings and
    ///   the `Int`/`Float` encodings of one number);
    /// * `OneOf ∧ Range` — the values of the disjunction that satisfy the
    ///   range (NaN values drop out: no range admits NaN);
    /// * `Range ∧ Range` — the tighter bound per side; on equal bounds the
    ///   endpoint is admissible only when both inputs admit it. A NaN
    ///   bound on either input makes the conjunction vacuous (`OneOf []`).
    ///
    /// The result may be empty — that is the contradiction static analysis
    /// reports (`age > 30 ∧ age < 20`).
    pub fn intersect(&self, other: &Interval) -> Interval {
        use Interval::*;
        match (self, other) {
            (OneOf(a), OneOf(b)) => OneOf(a.iter().filter(|v| b.contains(v)).cloned().collect()),
            (OneOf(a), r @ Range { .. }) | (r @ Range { .. }, OneOf(a)) => {
                OneOf(a.iter().filter(|v| r.matches(v)).cloned().collect())
            }
            (a @ Range { .. }, b @ Range { .. }) => {
                if a.is_vacuous() || b.is_vacuous() {
                    // NaN-bounded (or already inverted) ranges admit
                    // nothing; folding a NaN bound through max/min below
                    // would silently *drop* it (f64::max(NaN, x) is x)
                    return OneOf(Vec::new());
                }
                let (
                    Range {
                        lo: alo,
                        hi: ahi,
                        lo_incl: ali,
                        hi_incl: ahi_i,
                    },
                    Range {
                        lo: blo,
                        hi: bhi,
                        lo_incl: bli,
                        hi_incl: bhi_i,
                    },
                ) = (a, b)
                else {
                    unreachable!("both matched Range");
                };
                let (lo, lo_incl) = tighter_bound(*alo, *ali, *blo, *bli, false);
                let (hi, hi_incl) = tighter_bound(*ahi, *ahi_i, *bhi, *bhi_i, true);
                Range {
                    lo,
                    hi,
                    lo_incl,
                    hi_incl,
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // modification helpers (used by relaxation / concretization ops)
    // ------------------------------------------------------------------

    /// Relax a `OneOf` interval by adding a value (no-op on duplicates);
    /// returns whether the interval changed. On a `Range`, numeric values
    /// widen the nearer bound to cover the value.
    pub fn add_value(&mut self, v: Value) -> bool {
        match self {
            Interval::OneOf(vals) => {
                if vals.contains(&v) {
                    false
                } else {
                    vals.push(v);
                    true
                }
            }
            Interval::Range { lo, hi, .. } => {
                let Some(x) = v.as_f64() else { return false };
                let mut changed = false;
                if let Some(l) = lo {
                    if x < *l {
                        *l = x;
                        changed = true;
                    }
                }
                if let Some(h) = hi {
                    if x > *h {
                        *h = x;
                        changed = true;
                    }
                }
                changed
            }
        }
    }

    /// Concretize a `OneOf` interval by removing a value; returns whether
    /// the interval changed. Ranges are unaffected.
    pub fn remove_value(&mut self, v: &Value) -> bool {
        match self {
            Interval::OneOf(vals) => {
                let before = vals.len();
                vals.retain(|x| x != v);
                vals.len() != before
            }
            Interval::Range { .. } => false,
        }
    }

    /// Widen a numeric range by `step` on both bounded sides (relaxation).
    /// Returns whether anything changed.
    pub fn widen(&mut self, step: f64) -> bool {
        match self {
            Interval::Range { lo, hi, .. } => {
                let mut changed = false;
                if let Some(l) = lo {
                    *l -= step;
                    changed = true;
                }
                if let Some(h) = hi {
                    *h += step;
                    changed = true;
                }
                changed
            }
            Interval::OneOf(_) => false,
        }
    }

    /// Shrink a numeric range by `step` on both bounded sides
    /// (concretization); refuses to invert the interval.
    pub fn shrink(&mut self, step: f64) -> bool {
        match self {
            Interval::Range { lo, hi, .. } => match (lo.as_mut(), hi.as_mut()) {
                (Some(l), Some(h)) => {
                    if *h - *l >= 2.0 * step {
                        *l += step;
                        *h -= step;
                        true
                    } else {
                        false
                    }
                }
                (Some(l), None) => {
                    *l += step;
                    true
                }
                (None, Some(h)) => {
                    *h -= step;
                    true
                }
                (None, None) => false,
            },
            Interval::OneOf(_) => false,
        }
    }

    // ------------------------------------------------------------------
    // set distance (Def. 4 applied to predicate intervals)
    // ------------------------------------------------------------------

    /// Set size: cardinality for `OneOf`, measure (length) for `Range`.
    pub fn size_measure(&self) -> f64 {
        match self {
            Interval::OneOf(vals) => vals.len() as f64,
            Interval::Range { lo, hi, .. } => {
                let l = lo.unwrap_or(-UNBOUNDED_CLAMP);
                let h = hi.unwrap_or(UNBOUNDED_CLAMP);
                (h - l).max(0.0)
            }
        }
    }

    /// Modified-Hausdorff distance between two intervals in `[0, 1]`.
    ///
    /// With Boolean point-point distances (eq. 3.8/3.9), the MHD of Def. 4
    /// reduces to `max(|A∖B|/|A|, |B∖A|/|B|)`:
    ///
    /// * `OneOf` vs `OneOf` — exact set difference over values;
    /// * `Range` vs `Range` — measure of the range differences;
    /// * mixed — a finite value set has measure zero inside a proper range,
    ///   so the range side counts as fully uncovered unless the range is
    ///   degenerate; the value-set side still uses membership.
    pub fn distance(&self, other: &Interval) -> f64 {
        use Interval::*;
        match (self, other) {
            (OneOf(a), OneOf(b)) => {
                if a.is_empty() && b.is_empty() {
                    return 0.0;
                }
                if a.is_empty() || b.is_empty() {
                    return 1.0;
                }
                let a_not_b = a.iter().filter(|v| !b.contains(v)).count() as f64;
                let b_not_a = b.iter().filter(|v| !a.contains(v)).count() as f64;
                (a_not_b / a.len() as f64).max(b_not_a / b.len() as f64)
            }
            (Range { .. }, Range { .. }) => {
                let (al, ah) = self.clamped_bounds();
                let (bl, bh) = other.clamped_bounds();
                let a_len = (ah - al).max(0.0);
                let b_len = (bh - bl).max(0.0);
                if a_len == 0.0 && b_len == 0.0 {
                    return if (al - bl).abs() < f64::EPSILON {
                        0.0
                    } else {
                        1.0
                    };
                }
                let inter = (ah.min(bh) - al.max(bl)).max(0.0);
                let a_side = if a_len > 0.0 {
                    (a_len - inter) / a_len
                } else if other.matches(&Value::Float(al)) {
                    0.0
                } else {
                    1.0
                };
                let b_side = if b_len > 0.0 {
                    (b_len - inter) / b_len
                } else if self.matches(&Value::Float(bl)) {
                    0.0
                } else {
                    1.0
                };
                a_side.max(b_side)
            }
            (OneOf(a), r @ Range { .. }) => Self::mixed_distance(a, r),
            (r @ Range { .. }, OneOf(b)) => Self::mixed_distance(b, r),
        }
    }

    fn mixed_distance(set: &[Value], range: &Interval) -> f64 {
        if set.is_empty() {
            return 1.0;
        }
        let misses = set.iter().filter(|v| !range.matches(v)).count() as f64;
        let set_side = misses / set.len() as f64;
        // a finite point set covers measure zero of a proper range
        let range_side = if range.size_measure() == 0.0 && misses < set.len() as f64 {
            0.0
        } else {
            1.0
        };
        set_side.max(range_side)
    }

    fn clamped_bounds(&self) -> (f64, f64) {
        match self {
            Interval::Range { lo, hi, .. } => (
                lo.unwrap_or(-UNBOUNDED_CLAMP),
                hi.unwrap_or(UNBOUNDED_CLAMP),
            ),
            Interval::OneOf(_) => (0.0, 0.0),
        }
    }

    /// The values of a `OneOf` interval, if applicable.
    pub fn values(&self) -> Option<&[Value]> {
        match self {
            Interval::OneOf(v) => Some(v),
            Interval::Range { .. } => None,
        }
    }

    /// The single admissible value of an equality-shaped interval, if any:
    /// a one-element `OneOf` yields that value, a degenerate closed point
    /// `Range` `[x, x]` yields `Float(x)` (which `Value` equates with the
    /// `Int` encoding of the same number). Engines use this to route
    /// equality predicates through index buckets and dictionary lookups.
    pub fn point_value(&self) -> Option<Value> {
        match self {
            Interval::OneOf(vals) if vals.len() == 1 => Some(vals[0].clone()),
            Interval::Range {
                lo: Some(lo),
                hi: Some(hi),
                lo_incl: true,
                hi_incl: true,
            } if lo == hi => Some(Value::Float(*lo)),
            _ => None,
        }
    }
}

/// The tighter of two optional bounds for one side of a range conjunction:
/// the larger lower bound (`upper = false`) or the smaller upper bound
/// (`upper = true`); `None` is unbounded. Equal bounds are admissible only
/// when both inputs admit the endpoint.
fn tighter_bound(
    a: Option<f64>,
    a_incl: bool,
    b: Option<f64>,
    b_incl: bool,
    upper: bool,
) -> (Option<f64>, bool) {
    match (a, b) {
        // the flag is meaningless without a bound; pin it to `false`, the
        // convention of the `at_least`/`at_most` constructors, so merged
        // intervals share canonical signatures with constructed ones
        (None, None) => (None, false),
        (Some(x), None) => (Some(x), a_incl),
        (None, Some(y)) => (Some(y), b_incl),
        (Some(x), Some(y)) => {
            if x == y {
                (Some(x), a_incl && b_incl)
            } else if (x > y) != upper {
                (Some(x), a_incl)
            } else {
                (Some(y), b_incl)
            }
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interval::OneOf(vals) => {
                let parts: Vec<String> =
                    vals.iter().map(std::string::ToString::to_string).collect();
                write!(f, "{}", parts.join(" OR "))
            }
            Interval::Range {
                lo,
                hi,
                lo_incl,
                hi_incl,
            } => {
                match lo {
                    Some(l) => write!(f, "{}{l}", if *lo_incl { "[" } else { "(" })?,
                    None => write!(f, "(-inf")?,
                }
                write!(f, "; ")?;
                match hi {
                    Some(h) => write!(f, "{h}{}", if *hi_incl { "]" } else { ")" }),
                    None => write!(f, "+inf)"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_of_matching() {
        let i = Interval::one_of(["a", "b"]);
        assert!(i.matches(&Value::str("a")));
        assert!(!i.matches(&Value::str("c")));
        assert!(!i.matches(&Value::Int(1)));
    }

    #[test]
    fn range_matching_with_open_bounds() {
        // 1 < age < 4 — the thesis example containing {2, 3}
        let i = Interval::Range {
            lo: Some(1.0),
            hi: Some(4.0),
            lo_incl: false,
            hi_incl: false,
        };
        assert!(!i.matches(&Value::Int(1)));
        assert!(i.matches(&Value::Int(2)));
        assert!(i.matches(&Value::Int(3)));
        assert!(!i.matches(&Value::Int(4)));
        assert!(i.matches(&Value::Float(3.5)));
    }

    #[test]
    fn unbounded_ranges() {
        assert!(Interval::at_least(5.0).matches(&Value::Int(1_000_000)));
        assert!(!Interval::at_least(5.0).matches(&Value::Int(4)));
        assert!(Interval::at_most(5.0).matches(&Value::Int(-7)));
    }

    #[test]
    fn nan_matches_no_ordering_predicate() {
        let nan = Value::Float(f64::NAN);
        // even though total_cmp sorts NaN above +inf, no range admits it
        assert!(!Interval::at_least(f64::NEG_INFINITY).matches(&nan));
        assert!(!Interval::at_most(f64::INFINITY).matches(&nan));
        assert!(!Interval::between(f64::NEG_INFINITY, f64::INFINITY).matches(&nan));
        // NaN bounds admit nothing
        assert!(!Interval::at_least(f64::NAN).matches(&Value::Int(0)));
        assert!(!Interval::between(f64::NAN, f64::NAN).matches(&nan));
        // a NaN-bounded point range is empty, not a wildcard
        // identity membership still works: OneOf carries the value itself
        assert!(Interval::eq(f64::NAN).matches(&nan));
        assert!(!Interval::eq(f64::NAN).matches(&Value::Int(1)));
        // -0.0 stays an ordinary number on both sides
        assert!(Interval::between(-0.0, 0.0).matches(&Value::Float(-0.0)));
        assert!(Interval::between(-0.0, 0.0).matches(&Value::Int(0)));
    }

    #[test]
    fn point_values_of_equality_shaped_intervals() {
        assert_eq!(Interval::eq("x").point_value(), Some(Value::str("x")));
        assert_eq!(
            Interval::between(3.0, 3.0).point_value(),
            Some(Value::Float(3.0))
        );
        assert_eq!(Interval::one_of(["a", "b"]).point_value(), None);
        assert_eq!(Interval::between(1.0, 2.0).point_value(), None);
        assert_eq!(Interval::at_least(1.0).point_value(), None);
        // open endpoints are not point equality
        let open = Interval::Range {
            lo: Some(2.0),
            hi: Some(2.0),
            lo_incl: true,
            hi_incl: false,
        };
        assert_eq!(open.point_value(), None);
    }

    #[test]
    fn emptiness() {
        assert!(Interval::OneOf(vec![]).is_empty());
        assert!(!Interval::eq(1).is_empty());
        assert!(Interval::Range {
            lo: Some(3.0),
            hi: Some(2.0),
            lo_incl: true,
            hi_incl: true
        }
        .is_empty());
        assert!(Interval::Range {
            lo: Some(2.0),
            hi: Some(2.0),
            lo_incl: true,
            hi_incl: false
        }
        .is_empty());
        assert!(!Interval::between(2.0, 2.0).is_empty());
    }

    #[test]
    fn add_remove_values() {
        let mut i = Interval::one_of(["x"]);
        assert!(i.add_value(Value::str("y")));
        assert!(!i.add_value(Value::str("y")));
        assert!(i.matches(&Value::str("y")));
        assert!(i.remove_value(&Value::str("x")));
        assert!(!i.matches(&Value::str("x")));
        assert!(!i.remove_value(&Value::str("x")));
    }

    #[test]
    fn widen_and_shrink_ranges() {
        let mut r = Interval::between(10.0, 20.0);
        assert!(r.widen(5.0));
        assert!(r.matches(&Value::Int(6)));
        assert!(r.matches(&Value::Int(25)));
        assert!(r.shrink(10.0));
        assert!(r.matches(&Value::Int(15)));
        assert!(!r.matches(&Value::Int(6)));
        // refuses to invert
        let mut tiny = Interval::between(0.0, 1.0);
        assert!(!tiny.shrink(10.0));
    }

    #[test]
    fn distance_thesis_example() {
        // §3.2.2: pi(type,(university)) relaxed to
        // pi(type,(university,college)) → d = max(1/2, 0/1) = 1/2
        let orig = Interval::one_of(["university"]);
        let relaxed = Interval::one_of(["university", "college"]);
        assert!((relaxed.distance(&orig) - 0.5).abs() < 1e-12);
        assert!((orig.distance(&relaxed) - 0.5).abs() < 1e-12);
        assert_eq!(orig.distance(&orig), 0.0);
    }

    #[test]
    fn distance_ranges_by_measure() {
        let a = Interval::between(0.0, 10.0);
        let b = Interval::between(5.0, 10.0);
        // A∖B has length 5 of A's 10 → 0.5; B∖A empty → 0
        assert!((a.distance(&b) - 0.5).abs() < 1e-12);
        let c = Interval::between(20.0, 30.0);
        assert_eq!(a.distance(&c), 1.0);
    }

    #[test]
    fn distance_mixed() {
        let set = Interval::one_of([2, 3]);
        let range = Interval::between(1.0, 4.0);
        // all set points inside the range, but points cover measure zero
        assert_eq!(set.distance(&range), 1.0);
        let degenerate = Interval::between(2.0, 2.0);
        let single = Interval::one_of([2]);
        assert_eq!(single.distance(&degenerate), 0.0);
    }

    #[test]
    fn intersect_ranges_tightens_bounds() {
        let a = Interval::at_least(5.0);
        let b = Interval::at_most(10.0);
        let i = a.intersect(&b);
        assert_eq!(i, Interval::between(5.0, 10.0));
        // contradictory conjunction is empty but well-formed
        let c = Interval::at_least(31.0).intersect(&Interval::at_most(20.0));
        assert!(c.is_vacuous());
        // equal bounds: the endpoint survives only if both sides admit it
        let open = Interval::Range {
            lo: Some(5.0),
            hi: Some(7.0),
            lo_incl: false,
            hi_incl: true,
        };
        let both = Interval::between(5.0, 7.0).intersect(&open);
        assert!(!both.matches(&Value::Int(5)));
        assert!(both.matches(&Value::Int(7)));
    }

    #[test]
    fn intersect_value_sets() {
        let a = Interval::one_of(["x", "y", "z"]);
        let b = Interval::one_of(["y", "z", "w"]);
        assert_eq!(a.intersect(&b), Interval::one_of(["y", "z"]));
        // mixed: only values satisfying the range survive
        let set = Interval::one_of([1, 5, 9]);
        let r = Interval::between(2.0, 6.0);
        assert_eq!(set.intersect(&r), Interval::one_of([5]));
        assert_eq!(r.intersect(&set), Interval::one_of([5]));
        // disjoint sets intersect to the canonical empty interval
        assert!(Interval::eq("a").intersect(&Interval::eq("b")).is_vacuous());
    }

    #[test]
    fn intersect_respects_nan_semantics() {
        // a NaN bound admits nothing — the conjunction must stay vacuous
        // rather than have max/min drop the NaN bound
        let nan_bounded = Interval::at_least(f64::NAN);
        assert!(nan_bounded.is_vacuous());
        assert!(!nan_bounded.is_empty(), "is_empty leaves NaN to is_vacuous");
        let merged = nan_bounded.intersect(&Interval::between(0.0, 10.0));
        assert!(merged.is_vacuous());
        assert!(!merged.matches(&Value::Int(5)));
        // a NaN *value* never satisfies a range, so it drops from the set
        let set = Interval::one_of([Value::Float(f64::NAN), Value::Float(1.0)]);
        let i = set.intersect(&Interval::between(0.0, 2.0));
        assert_eq!(i, Interval::one_of([Value::Float(1.0)]));
    }

    #[test]
    fn intersect_matches_conjunction_pointwise() {
        let cases = [
            Interval::one_of(["a", "b"]),
            Interval::eq(3),
            Interval::between(1.0, 4.0),
            Interval::at_least(2.0),
            Interval::at_most(3.0),
            Interval::OneOf(vec![]),
        ];
        let probes = [
            Value::str("a"),
            Value::str("b"),
            Value::str("c"),
            Value::Int(0),
            Value::Int(2),
            Value::Int(3),
            Value::Float(3.5),
            Value::Float(f64::NAN),
        ];
        for a in &cases {
            for b in &cases {
                let i = a.intersect(b);
                for v in &probes {
                    assert_eq!(
                        i.matches(v),
                        a.matches(v) && b.matches(v),
                        "{a} ∧ {b} at {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn display_round_trips_concepts() {
        assert_eq!(Interval::one_of(["a", "b"]).to_string(), "\"a\" OR \"b\"");
        assert_eq!(Interval::between(1.0, 2.0).to_string(), "[1; 2]");
    }
}
