//! A compact textual syntax for pattern queries.
//!
//! Lets tools, tests and examples write patterns as text instead of builder
//! calls. The grammar is a pragmatic subset of the ASCII-art style used by
//! property-graph systems:
//!
//! ```text
//! pattern   := chain (';' chain)*
//! chain     := node (edge node)*
//! node      := '(' ident? (':' value)? props? ')'
//! edge      := '-[' (':' type ('|' type)*)? props? ']->'        forward
//!            | '<-[' ... ']-'                                   backward
//!            | '-[' ... ']-'                                    undirected
//! props     := '{' prop (',' prop)* '}'
//! prop      := ident op literal ('|' literal)*
//! op        := ':' | '=' | '>=' | '<=' | '>' | '<'
//! literal   := number | 'string' | ident | true | false
//! ```
//!
//! `(p:person {name: 'Anna', age >= 30})-[:knows {since < 2010}]->(q:person)`
//! declares two vertices with a `type` predicate (the `:label` shorthand),
//! attribute predicates (`:`/`=` for equality with `|` disjunction, the
//! comparison operators for open ranges) and one typed edge. Re-using a
//! node identifier in another chain refers to the same query vertex, so
//! non-linear topologies (stars, triangles) compose from chains:
//!
//! ```text
//! (a:person)-[:knows]->(b:person); (a)-[:livesIn]->(c:city); (b)-[:livesIn]->(c)
//! ```

use crate::direction::DirectionSet;
use crate::interval::Interval;
use crate::predicate::Predicate;
use crate::query::{PatternQuery, QVid, QueryEdge, QueryVertex};
use std::collections::HashMap;
use whyq_graph::Value;

/// Parse error with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where parsing failed.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a pattern string into a query.
pub fn parse_query(input: &str) -> Result<PatternQuery, ParseError> {
    Parser::new(input).parse()
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    query: PatternQuery,
    named: HashMap<String, QVid>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            query: PatternQuery::new(),
            named: HashMap::new(),
        }
    }

    fn parse(mut self) -> Result<PatternQuery, ParseError> {
        loop {
            self.skip_ws();
            if self.at_end() {
                break;
            }
            self.parse_chain()?;
            self.skip_ws();
            if self.eat(b';') {
                continue;
            }
            if !self.at_end() {
                return Err(self.error("expected ';' or end of pattern"));
            }
        }
        if self.query.num_vertices() == 0 {
            return Err(self.error("empty pattern"));
        }
        Ok(self.query)
    }

    fn parse_chain(&mut self) -> Result<(), ParseError> {
        let mut left = self.parse_node()?;
        loop {
            self.skip_ws();
            let backward_in = self.peek_str("<-[");
            if !backward_in && !self.peek_str("-[") {
                return Ok(());
            }
            // consume '<-[' or '-['
            self.pos += if backward_in { 3 } else { 2 };
            let (types, predicates) = self.parse_edge_body()?;
            self.skip_ws();
            if !self.eat(b']') {
                return Err(self.error("expected ']' closing edge"));
            }
            // ']->' (forward), ']-' (undirected / closing a backward edge)
            let forward_out = self.peek_str("->");
            if forward_out {
                self.pos += 2;
            } else if self.eat(b'-') {
                // plain '-'
            } else {
                return Err(self.error("expected '->' or '-' after ']'"));
            }
            let right = self.parse_node()?;
            let (src, dst, directions) = match (backward_in, forward_out) {
                (false, true) => (left, right, DirectionSet::FORWARD),
                (true, false) => (right, left, DirectionSet::FORWARD),
                (false, false) => (left, right, DirectionSet::BOTH),
                (true, true) => {
                    return Err(self.error("edge cannot point both ways; use -[..]- for undirected"))
                }
            };
            self.query.add_edge(QueryEdge {
                src,
                dst,
                types,
                directions,
                predicates,
                label: None,
            });
            left = right;
        }
    }

    fn parse_node(&mut self) -> Result<QVid, ParseError> {
        self.skip_ws();
        if !self.eat(b'(') {
            return Err(self.error("expected '(' starting a node"));
        }
        self.skip_ws();
        let name = self.parse_ident_opt();
        // back-reference: a bare known identifier
        if let Some(n) = &name {
            self.skip_ws();
            if self.peek() == Some(b')') && self.named.contains_key(n) {
                self.pos += 1;
                return Ok(self.named[n]);
            }
        }
        let mut predicates = Vec::new();
        self.skip_ws();
        if self.eat(b':') {
            self.skip_ws();
            let label = self
                .parse_ident_opt()
                .ok_or_else(|| self.error("expected label after ':'"))?;
            predicates.push(Predicate::eq("type", label));
        }
        self.skip_ws();
        if self.peek() == Some(b'{') {
            predicates.extend(self.parse_props()?);
        }
        self.skip_ws();
        if !self.eat(b')') {
            return Err(self.error("expected ')' closing node"));
        }
        let vertex = QueryVertex {
            predicates,
            label: name.clone(),
        };
        let id = self.query.add_vertex(vertex);
        if let Some(n) = name {
            if self.named.insert(n.clone(), id).is_some() {
                return Err(self.error(&format!("node {n:?} redefined with new constraints")));
            }
        }
        Ok(id)
    }

    fn parse_edge_body(&mut self) -> Result<(Vec<String>, Vec<Predicate>), ParseError> {
        let mut types = Vec::new();
        self.skip_ws();
        if self.eat(b':') {
            loop {
                self.skip_ws();
                let ty = self
                    .parse_ident_opt()
                    .ok_or_else(|| self.error("expected edge type"))?;
                types.push(ty);
                self.skip_ws();
                if !self.eat(b'|') {
                    break;
                }
            }
        }
        self.skip_ws();
        let predicates = if self.peek() == Some(b'{') {
            self.parse_props()?
        } else {
            Vec::new()
        };
        Ok((types, predicates))
    }

    fn parse_props(&mut self) -> Result<Vec<Predicate>, ParseError> {
        if !self.eat(b'{') {
            return Err(self.error("expected '{'"));
        }
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            let attr = self
                .parse_ident_opt()
                .ok_or_else(|| self.error("expected attribute name"))?;
            self.skip_ws();
            let op = self.parse_op()?;
            self.skip_ws();
            let first = self.parse_literal()?;
            let interval = match op {
                Op::Eq => {
                    let mut vals = vec![first];
                    loop {
                        self.skip_ws();
                        if !self.eat(b'|') {
                            break;
                        }
                        self.skip_ws();
                        vals.push(self.parse_literal()?);
                    }
                    Interval::OneOf(vals)
                }
                Op::Ge | Op::Gt | Op::Le | Op::Lt => {
                    let x = first
                        .as_f64()
                        .ok_or_else(|| self.error("range predicate needs a numeric literal"))?;
                    match op {
                        Op::Ge => Interval::Range {
                            lo: Some(x),
                            hi: None,
                            lo_incl: true,
                            hi_incl: false,
                        },
                        Op::Gt => Interval::Range {
                            lo: Some(x),
                            hi: None,
                            lo_incl: false,
                            hi_incl: false,
                        },
                        Op::Le => Interval::Range {
                            lo: None,
                            hi: Some(x),
                            lo_incl: false,
                            hi_incl: true,
                        },
                        Op::Lt => Interval::Range {
                            lo: None,
                            hi: Some(x),
                            lo_incl: false,
                            hi_incl: false,
                        },
                        Op::Eq => unreachable!(),
                    }
                }
            };
            out.push(Predicate { attr, interval });
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            break;
        }
        self.skip_ws();
        if !self.eat(b'}') {
            return Err(self.error("expected '}' or ','"));
        }
        Ok(out)
    }

    fn parse_op(&mut self) -> Result<Op, ParseError> {
        if self.peek_str(">=") {
            self.pos += 2;
            return Ok(Op::Ge);
        }
        if self.peek_str("<=") {
            self.pos += 2;
            return Ok(Op::Le);
        }
        match self.peek() {
            Some(b':' | b'=') => {
                self.pos += 1;
                Ok(Op::Eq)
            }
            Some(b'>') => {
                self.pos += 1;
                Ok(Op::Gt)
            }
            Some(b'<') => {
                self.pos += 1;
                Ok(Op::Lt)
            }
            _ => Err(self.error("expected one of ':', '=', '>', '<', '>=', '<='")),
        }
    }

    fn parse_literal(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'\'' | b'"') => {
                let quote = self.bytes[self.pos];
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == quote {
                        let s = &self.src[start..self.pos];
                        self.pos += 1;
                        return Ok(Value::str(s));
                    }
                    self.pos += 1;
                }
                Err(self.error("unterminated string literal"))
            }
            Some(c) if c.is_ascii_digit() || c == b'-' || c == b'+' => {
                let start = self.pos;
                self.pos += 1;
                let mut is_float = false;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        self.pos += 1;
                    } else if c == b'.' && !is_float {
                        is_float = true;
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let text = &self.src[start..self.pos];
                if is_float {
                    text.parse::<f64>()
                        .map(Value::Float)
                        .map_err(|_| self.error("invalid float literal"))
                } else {
                    text.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| self.error("invalid integer literal"))
                }
            }
            _ => {
                let ident = self
                    .parse_ident_opt()
                    .ok_or_else(|| self.error("expected a literal"))?;
                match ident.as_str() {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    other => Ok(Value::str(other)),
                }
            }
        }
    }

    fn parse_ident_opt(&mut self) -> Option<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos > start {
            Some(self.src[start..self.pos].to_string())
        } else {
            None
        }
    }

    // ----- low-level cursor helpers ------------------------------------

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_str(&self, s: &str) -> bool {
        self.src[self.pos.min(self.src.len())..].starts_with(s)
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn error(&self, message: &str) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.to_string(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Eq,
    Ge,
    Gt,
    Le,
    Lt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_edge() {
        let q = parse_query("(p:person)-[:knows]->(q:person)").unwrap();
        assert_eq!(q.num_vertices(), 2);
        assert_eq!(q.num_edges(), 1);
        let e = q.edge(crate::query::QEid(0)).unwrap();
        assert_eq!(e.types, vec!["knows".to_string()]);
        assert_eq!(e.directions, DirectionSet::FORWARD);
        let p = q.vertex(QVid(0)).unwrap();
        assert_eq!(p.label.as_deref(), Some("p"));
        assert!(p.predicate("type").is_some());
    }

    #[test]
    fn properties_and_operators() {
        let q = parse_query(
            "(p:person {name: 'Anna' | 'Alice', age >= 30})-[:knows {since < 2010}]->(q)",
        )
        .unwrap();
        let p = q.vertex(QVid(0)).unwrap();
        let name = p.predicate("name").unwrap();
        assert!(name.interval.matches(&Value::str("Alice")));
        assert!(!name.interval.matches(&Value::str("Bob")));
        let age = p.predicate("age").unwrap();
        assert!(age.interval.matches(&Value::Int(30)));
        assert!(!age.interval.matches(&Value::Int(29)));
        let e = q.edge(crate::query::QEid(0)).unwrap();
        assert!(e
            .predicate("since")
            .unwrap()
            .interval
            .matches(&Value::Int(2009)));
        assert!(!e
            .predicate("since")
            .unwrap()
            .interval
            .matches(&Value::Int(2010)));
    }

    #[test]
    fn directions() {
        let fwd = parse_query("(a)-[:t]->(b)").unwrap();
        assert_eq!(fwd.edge(crate::query::QEid(0)).unwrap().src, QVid(0));
        let bwd = parse_query("(a)<-[:t]-(b)").unwrap();
        // a <- b means the data edge runs b → a
        let e = bwd.edge(crate::query::QEid(0)).unwrap();
        assert_eq!(e.src, QVid(1));
        assert_eq!(e.dst, QVid(0));
        let undirected = parse_query("(a)-[:t]-(b)").unwrap();
        assert_eq!(
            undirected.edge(crate::query::QEid(0)).unwrap().directions,
            DirectionSet::BOTH
        );
    }

    #[test]
    fn chains_and_backreferences_build_triangles() {
        let q = parse_query(
            "(a:person)-[:knows]->(b:person); (a)-[:livesIn]->(c:city); (b)-[:livesIn]->(c)",
        )
        .unwrap();
        assert_eq!(q.num_vertices(), 3);
        assert_eq!(q.num_edges(), 3);
        assert!(q.is_connected());
        // degree of c is 2 (both livesIn edges end there)
        assert_eq!(q.degree(QVid(2)), 2);
    }

    #[test]
    fn type_disjunction_on_edges() {
        let q = parse_query("(a)-[:knows|likes]->(b)").unwrap();
        assert_eq!(
            q.edge(crate::query::QEid(0)).unwrap().types,
            vec!["knows".to_string(), "likes".to_string()]
        );
    }

    #[test]
    fn anonymous_and_unlabeled_nodes() {
        let q = parse_query("()-[:t]->()").unwrap();
        assert_eq!(q.num_vertices(), 2);
        assert!(q.vertex(QVid(0)).unwrap().predicates.is_empty());
    }

    #[test]
    fn numeric_and_boolean_literals() {
        let q = parse_query("(a {x = 3.5, y = -7, z = true})").unwrap();
        let v = q.vertex(QVid(0)).unwrap();
        assert!(v
            .predicate("x")
            .unwrap()
            .interval
            .matches(&Value::Float(3.5)));
        assert!(v.predicate("y").unwrap().interval.matches(&Value::Int(-7)));
        assert!(v
            .predicate("z")
            .unwrap()
            .interval
            .matches(&Value::Bool(true)));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_query("(a-").unwrap_err();
        assert!(err.position > 0);
        assert!(parse_query("").is_err());
        assert!(parse_query("(a)-[:t]->").is_err());
        assert!(parse_query("(a {x ~ 3})").is_err());
        // both-ways edge is rejected
        assert!(parse_query("(a)<-[:t]->(b)").is_err());
        // redefinition of a named node with constraints
        assert!(parse_query("(a:person); (a:city)").is_err());
    }

    #[test]
    fn parsed_query_matches_builder_query() {
        use crate::builder::QueryBuilder;
        let parsed = parse_query("(p:person)-[:livesIn]->(c:city)").unwrap();
        let built = QueryBuilder::new("b")
            .vertex("p", [Predicate::eq("type", "person")])
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("p", "c", "livesIn")
            .build();
        assert_eq!(
            crate::signature::signature(&parsed),
            crate::signature::signature(&built)
        );
    }
}
