//! Ergonomic construction of pattern queries.
//!
//! `QueryBuilder` lets callers refer to vertices by string keys while the
//! builder tracks the assigned stable ids — convenient for the workload
//! definitions in `whyq-datagen` and for examples.

use crate::direction::DirectionSet;
use crate::predicate::Predicate;
use crate::query::{PatternQuery, QEid, QVid, QueryEdge, QueryVertex};
use std::collections::HashMap;

/// Fluent builder for [`PatternQuery`].
#[derive(Debug, Default)]
pub struct QueryBuilder {
    query: PatternQuery,
    keys: HashMap<String, QVid>,
}

impl QueryBuilder {
    /// Start a named query.
    pub fn new(name: impl Into<String>) -> Self {
        QueryBuilder {
            query: PatternQuery::named(name),
            keys: HashMap::new(),
        }
    }

    /// Add a vertex under `key` with the given predicates.
    ///
    /// # Panics
    /// Panics if `key` was already used (construction bug).
    pub fn vertex(mut self, key: &str, predicates: impl IntoIterator<Item = Predicate>) -> Self {
        assert!(!self.keys.contains_key(key), "duplicate vertex key {key:?}");
        let id = self
            .query
            .add_vertex(QueryVertex::with(predicates).labeled(key));
        self.keys.insert(key.to_string(), id);
        self
    }

    /// Add a forward edge `src → dst` with one type and no predicates.
    pub fn edge(self, src: &str, dst: &str, ty: &str) -> Self {
        self.edge_full(src, dst, ty, DirectionSet::FORWARD, [])
    }

    /// Add an edge with explicit directions and predicates.
    pub fn edge_full(
        mut self,
        src: &str,
        dst: &str,
        ty: &str,
        directions: DirectionSet,
        predicates: impl IntoIterator<Item = Predicate>,
    ) -> Self {
        let s = self.resolve(src);
        let d = self.resolve(dst);
        self.query.add_edge(QueryEdge {
            src: s,
            dst: d,
            types: vec![ty.to_string()],
            directions,
            predicates: predicates.into_iter().collect(),
            label: None,
        });
        self
    }

    /// The id assigned to `key`.
    ///
    /// # Panics
    /// Panics on unknown keys.
    pub fn id(&self, key: &str) -> QVid {
        self.resolve(key)
    }

    fn resolve(&self, key: &str) -> QVid {
        *self
            .keys
            .get(key)
            .unwrap_or_else(|| panic!("unknown vertex key {key:?}"))
    }

    /// Finish building.
    pub fn build(self) -> PatternQuery {
        self.query
    }

    /// Finish building, also returning the key → id map.
    pub fn build_with_keys(self) -> (PatternQuery, HashMap<String, QVid>) {
        (self.query, self.keys)
    }
}

/// Find the edge id connecting two labeled vertices (first match), useful in
/// tests and examples.
pub fn edge_between(q: &PatternQuery, src: QVid, dst: QVid) -> Option<QEid> {
    q.edge_ids()
        .find(|&e| q.edge(e).is_some_and(|ed| ed.src == src && ed.dst == dst))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_thesis_example_query() {
        // Fig. 3.5a: person(Anna) -workAt-> university <-studyAt- person,
        // university -locatedIn-> city(Berlin)
        let q = QueryBuilder::new("fig3.5a")
            .vertex(
                "anna",
                [
                    Predicate::eq("type", "person"),
                    Predicate::eq("name", "Anna"),
                ],
            )
            .vertex("uni", [Predicate::eq("type", "university")])
            .vertex(
                "city",
                [
                    Predicate::eq("type", "city"),
                    Predicate::eq("name", "Berlin"),
                ],
            )
            .vertex(
                "student",
                [
                    Predicate::eq("type", "person"),
                    Predicate::eq("gender", "male"),
                    Predicate::eq("nationality", "Chinese"),
                ],
            )
            .edge_full(
                "anna",
                "uni",
                "workAt",
                DirectionSet::FORWARD,
                [Predicate::eq("sinceYear", 2003)],
            )
            .edge("uni", "city", "locatedIn")
            .edge("student", "uni", "studyAt")
            .build();
        assert_eq!(q.num_vertices(), 4);
        assert_eq!(q.num_edges(), 3);
        assert!(q.is_connected());
        assert_eq!(q.name.as_deref(), Some("fig3.5a"));
    }

    #[test]
    #[should_panic(expected = "duplicate vertex key")]
    fn duplicate_key_panics() {
        let _ = QueryBuilder::new("x").vertex("a", []).vertex("a", []);
    }

    #[test]
    fn edge_between_finds_edge() {
        let b = QueryBuilder::new("x").vertex("a", []).vertex("b", []);
        let (a, bb) = (b.id("a"), b.id("b"));
        let q = b.edge("a", "b", "t").build();
        assert!(edge_between(&q, a, bb).is_some());
        assert!(edge_between(&q, bb, a).is_none());
    }
}
