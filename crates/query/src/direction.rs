//! Edge directions.
//!
//! A query edge carries a *set* of admissible directions (§3.2.2): forward
//! (query source → query target maps onto data source → data target),
//! backward (reversed), or both (direction-agnostic matching).

/// One admissible direction of a query edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Query edge maps onto a data edge in the drawn direction.
    Forward,
    /// Query edge maps onto a data edge in the reverse direction.
    Backward,
}

/// The (non-empty in valid queries) set of admissible directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectionSet {
    /// Forward admissible.
    pub forward: bool,
    /// Backward admissible.
    pub backward: bool,
}

impl DirectionSet {
    /// Only forward matching.
    pub const FORWARD: DirectionSet = DirectionSet {
        forward: true,
        backward: false,
    };
    /// Only backward matching.
    pub const BACKWARD: DirectionSet = DirectionSet {
        forward: false,
        backward: true,
    };
    /// Direction-agnostic matching.
    pub const BOTH: DirectionSet = DirectionSet {
        forward: true,
        backward: true,
    };

    /// Does the set contain `dir`?
    pub fn contains(&self, dir: Direction) -> bool {
        match dir {
            Direction::Forward => self.forward,
            Direction::Backward => self.backward,
        }
    }

    /// Insert a direction; returns whether the set changed.
    pub fn insert(&mut self, dir: Direction) -> bool {
        let slot = match dir {
            Direction::Forward => &mut self.forward,
            Direction::Backward => &mut self.backward,
        };
        let changed = !*slot;
        *slot = true;
        changed
    }

    /// Remove a direction; returns whether the set changed. Removing the
    /// last direction is allowed here — validity is checked by the query.
    pub fn remove(&mut self, dir: Direction) -> bool {
        let slot = match dir {
            Direction::Forward => &mut self.forward,
            Direction::Backward => &mut self.backward,
        };
        let changed = *slot;
        *slot = false;
        changed
    }

    /// Number of admissible directions.
    pub fn len(&self) -> usize {
        usize::from(self.forward) + usize::from(self.backward)
    }

    /// True when no direction is admissible (an invalid edge).
    pub fn is_empty(&self) -> bool {
        !self.forward && !self.backward
    }

    /// Modified-Hausdorff distance between two direction sets with Boolean
    /// point distances: `max(|A∖B|/|A|, |B∖A|/|B|)`.
    pub fn distance(&self, other: &DirectionSet) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 0.0;
        }
        if self.is_empty() || other.is_empty() {
            return 1.0;
        }
        let a_not_b = usize::from(self.forward && !other.forward)
            + usize::from(self.backward && !other.backward);
        let b_not_a = usize::from(other.forward && !self.forward)
            + usize::from(other.backward && !self.backward);
        (a_not_b as f64 / self.len() as f64).max(b_not_a as f64 / other.len() as f64)
    }
}

impl Default for DirectionSet {
    fn default() -> Self {
        DirectionSet::FORWARD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_and_mutation() {
        let mut d = DirectionSet::FORWARD;
        assert!(d.contains(Direction::Forward));
        assert!(!d.contains(Direction::Backward));
        assert!(d.insert(Direction::Backward));
        assert!(!d.insert(Direction::Backward));
        assert_eq!(d, DirectionSet::BOTH);
        assert!(d.remove(Direction::Forward));
        assert_eq!(d, DirectionSet::BACKWARD);
    }

    #[test]
    fn distances() {
        assert_eq!(DirectionSet::FORWARD.distance(&DirectionSet::FORWARD), 0.0);
        assert_eq!(DirectionSet::FORWARD.distance(&DirectionSet::BACKWARD), 1.0);
        // FORWARD vs BOTH: A∖B=0; B∖A=1 of 2 → 0.5
        assert!((DirectionSet::FORWARD.distance(&DirectionSet::BOTH) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn emptiness() {
        let mut d = DirectionSet::FORWARD;
        d.remove(Direction::Forward);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.distance(&DirectionSet::FORWARD), 1.0);
    }
}
