//! Query deltas: classifying how one relax-loop sibling differs from
//! another.
//!
//! The coarse and fine rewriters (§6.3.1, §6.2.2) derive hundreds of
//! near-identical queries per relaxation step. The plan cache already
//! dedups *exact* repeats by full signature; this module provides the
//! finer-grained vocabulary the incremental layer needs:
//!
//! - [`component_signature`] — the canonical signature of one
//!   weakly-connected component, so per-component results can be shared
//!   between siblings whose *other* components changed;
//! - [`shape_signature`] / [`shape_hash`] — the signature with interval
//!   contents blanked, so a sibling can cheaply find candidate parents
//!   that differ only in constraint *content*;
//! - [`QueryDelta::between`] — a precise classification of the
//!   difference between two same-shape queries, used to decide whether a
//!   cached parent plan can be patched instead of recompiled.

use crate::modification::Target;
use crate::query::{PatternQuery, QVid};
use crate::signature::{fnv1a, interval_sig, write_edge_sig, write_vertex_sig};
use std::collections::BTreeMap;

/// Canonical signature of the sub-query induced by `vertices` (one weakly-
/// connected component) plus every live edge whose endpoints both lie in
/// it. Element ids are raw query ids — stable across relaxation siblings —
/// so two siblings that share a component verbatim produce byte-identical
/// component signatures, even when their other components differ.
pub fn component_signature(q: &PatternQuery, vertices: &[QVid]) -> String {
    let mut verts: Vec<QVid> = vertices.to_vec();
    verts.sort_by_key(|v| v.0);
    verts.dedup();
    let mut out = String::new();
    for &v in &verts {
        write_vertex_sig(&mut out, q, v, false);
    }
    for e in q.edge_ids() {
        let ed = q.edge(e).expect("live");
        let in_comp = |v: QVid| verts.binary_search_by_key(&v.0, |x| x.0).is_ok();
        if in_comp(ed.src) && in_comp(ed.dst) {
            write_edge_sig(&mut out, q, e, false);
        }
    }
    out
}

/// The query signature with every interval's *content* blanked to `*`:
/// element ids, predicate attributes, edge endpoints/directions/types all
/// remain. Two queries with equal shape signatures differ at most in the
/// intervals of their predicates — exactly the family the relax loop's
/// interval rewrites (and the server batcher's `OneOf` variants) produce.
pub fn shape_signature(q: &PatternQuery) -> String {
    let mut out = String::new();
    for v in q.vertex_ids() {
        write_vertex_sig(&mut out, q, v, true);
    }
    for e in q.edge_ids() {
        write_edge_sig(&mut out, q, e, true);
    }
    out
}

/// FNV-1a hash of [`shape_signature`] — the bucket key for the session's
/// recent-query registry. Collisions are possible; callers must confirm
/// with [`QueryDelta::between`] before acting on a hash hit.
pub fn shape_hash(q: &PatternQuery) -> u64 {
    fnv1a(&shape_signature(q))
}

/// How a child query differs from a parent query (see
/// [`QueryDelta::between`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaKind {
    /// Identical constraint content: equal full signatures.
    Identical,
    /// Exactly one predicate's interval changed, on exactly one element,
    /// and that element carries exactly one predicate on that attribute
    /// in both queries. Everything else — structure, types, directions,
    /// every other predicate — is identical. This is the patchable case:
    /// a compiled parent plan stays valid after recompiling just the
    /// changed element's predicate table and its seed source.
    SingleInterval {
        /// The element whose predicate interval changed.
        target: Target,
        /// The attribute whose interval changed.
        attr: String,
    },
    /// Any other difference: element sets, edge endpoints/types/
    /// directions, predicate attribute sets, or several intervals.
    Other,
}

/// The classified difference between two queries sharing one id space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryDelta {
    /// The classification.
    pub kind: DeltaKind,
}

impl QueryDelta {
    /// Classify how `child` differs from `parent`. Both queries must come
    /// from the same relaxation family (shared element-id space) for the
    /// result to be meaningful; ids are compared raw, never re-labelled.
    pub fn between(parent: &PatternQuery, child: &PatternQuery) -> QueryDelta {
        let kind = classify(parent, child);
        QueryDelta { kind }
    }

    /// True when the delta admits plan patching ([`DeltaKind::SingleInterval`]).
    pub fn is_single_interval(&self) -> bool {
        matches!(self.kind, DeltaKind::SingleInterval { .. })
    }
}

fn classify(parent: &PatternQuery, child: &PatternQuery) -> DeltaKind {
    if parent.vertex_ids().ne(child.vertex_ids()) || parent.edge_ids().ne(child.edge_ids()) {
        return DeltaKind::Other;
    }
    // Structural edge content (endpoints, directions, admissible types)
    // must match exactly — only predicate intervals may move.
    for e in parent.edge_ids() {
        let pe = parent.edge(e).expect("live");
        let ce = child.edge(e).expect("live");
        if pe.src != ce.src || pe.dst != ce.dst || pe.directions != ce.directions {
            return DeltaKind::Other;
        }
        let mut pt = pe.types.clone();
        let mut ct = ce.types.clone();
        pt.sort();
        pt.dedup();
        ct.sort();
        ct.dedup();
        if pt != ct {
            return DeltaKind::Other;
        }
    }
    let mut diffs: Vec<(Target, String)> = Vec::new();
    for v in parent.vertex_ids() {
        let pp = &parent.vertex(v).expect("live").predicates;
        let cp = &child.vertex(v).expect("live").predicates;
        match diff_preds(pp, cp) {
            PredDiff::Same => {}
            PredDiff::OneInterval(attr) => diffs.push((Target::Vertex(v), attr)),
            PredDiff::Other => return DeltaKind::Other,
        }
    }
    for e in parent.edge_ids() {
        let pp = &parent.edge(e).expect("live").predicates;
        let cp = &child.edge(e).expect("live").predicates;
        match diff_preds(pp, cp) {
            PredDiff::Same => {}
            PredDiff::OneInterval(attr) => diffs.push((Target::Edge(e), attr)),
            PredDiff::Other => return DeltaKind::Other,
        }
    }
    match (diffs.pop(), diffs.pop()) {
        (None, _) => DeltaKind::Identical,
        (Some((target, attr)), None) => DeltaKind::SingleInterval { target, attr },
        _ => DeltaKind::Other,
    }
}

enum PredDiff {
    Same,
    OneInterval(String),
    Other,
}

/// Compare two predicate lists under the signature's canonicalization
/// (per-attribute *sets* of interval signatures — order and duplicates
/// are irrelevant, matching [`crate::signature::signature`] semantics).
fn diff_preds(
    parent: &[crate::predicate::Predicate],
    child: &[crate::predicate::Predicate],
) -> PredDiff {
    let group = |preds: &[crate::predicate::Predicate]| -> BTreeMap<String, Vec<String>> {
        let mut m: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for p in preds {
            m.entry(p.attr.clone())
                .or_default()
                .push(interval_sig(&p.interval));
        }
        for sigs in m.values_mut() {
            sigs.sort();
            sigs.dedup();
        }
        m
    };
    let pm = group(parent);
    let cm = group(child);
    // Predicate added or removed (attribute sets differ) is structural.
    if pm.keys().ne(cm.keys()) {
        return PredDiff::Other;
    }
    let mut changed: Option<String> = None;
    for (attr, psigs) in &pm {
        let csigs = &cm[attr];
        if psigs == csigs {
            continue;
        }
        // A patchable interval change: exactly one predicate on this
        // attribute on both sides, and no other attribute changed.
        if psigs.len() != 1 || csigs.len() != 1 || changed.is_some() {
            return PredDiff::Other;
        }
        changed = Some(attr.clone());
    }
    match changed {
        Some(attr) => PredDiff::OneInterval(attr),
        None => PredDiff::Same,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::predicate::Predicate;
    use crate::query::{QEid, QueryEdge, QueryVertex};

    fn base() -> PatternQuery {
        let mut q = PatternQuery::new();
        let a = q.add_vertex(QueryVertex::with([
            Predicate::eq("type", "person"),
            Predicate::eq("city", "berlin"),
        ]));
        let b = q.add_vertex(QueryVertex::with([Predicate::eq("type", "city")]));
        q.add_edge(QueryEdge::typed(a, b, "livesIn"));
        q
    }

    #[test]
    fn identical_queries_classify_identical() {
        let d = QueryDelta::between(&base(), &base());
        assert_eq!(d.kind, DeltaKind::Identical);
    }

    #[test]
    fn single_interval_change_is_patchable() {
        let parent = base();
        let mut child = base();
        child
            .vertex_mut(QVid(0))
            .unwrap()
            .predicate_mut("city")
            .unwrap()
            .interval = Interval::one_of(["berlin", "dresden"]);
        let d = QueryDelta::between(&parent, &child);
        assert_eq!(
            d.kind,
            DeltaKind::SingleInterval {
                target: Target::Vertex(QVid(0)),
                attr: "city".into(),
            }
        );
        assert!(d.is_single_interval());
    }

    #[test]
    fn two_interval_changes_are_other() {
        let parent = base();
        let mut child = base();
        child
            .vertex_mut(QVid(0))
            .unwrap()
            .predicate_mut("city")
            .unwrap()
            .interval = Interval::one_of(["berlin", "dresden"]);
        child
            .vertex_mut(QVid(1))
            .unwrap()
            .predicate_mut("type")
            .unwrap()
            .interval = Interval::one_of(["city", "country"]);
        assert_eq!(QueryDelta::between(&parent, &child).kind, DeltaKind::Other);
    }

    #[test]
    fn removed_predicate_is_other() {
        let parent = base();
        let mut child = base();
        child
            .vertex_mut(QVid(0))
            .unwrap()
            .predicates
            .retain(|p| p.attr != "city");
        assert_eq!(QueryDelta::between(&parent, &child).kind, DeltaKind::Other);
    }

    #[test]
    fn removed_edge_is_other() {
        let parent = base();
        let mut child = base();
        child.remove_edge(QEid(0));
        assert_eq!(QueryDelta::between(&parent, &child).kind, DeltaKind::Other);
    }

    #[test]
    fn changed_edge_type_is_other() {
        let parent = base();
        let mut child = base();
        child.edge_mut(QEid(0)).unwrap().types = vec!["worksIn".into()];
        assert_eq!(QueryDelta::between(&parent, &child).kind, DeltaKind::Other);
    }

    #[test]
    fn edge_predicate_interval_change_targets_the_edge() {
        let mut parent = base();
        parent.edge_mut(QEid(0)).unwrap().predicates = vec![Predicate::eq("since", 2000)];
        let mut child = parent.clone();
        child
            .edge_mut(QEid(0))
            .unwrap()
            .predicate_mut("since")
            .unwrap()
            .interval = Interval::one_of([2000, 2001]);
        assert_eq!(
            QueryDelta::between(&parent, &child).kind,
            DeltaKind::SingleInterval {
                target: Target::Edge(QEid(0)),
                attr: "since".into(),
            }
        );
    }

    #[test]
    fn shape_signature_ignores_interval_content_only() {
        let parent = base();
        let mut child = base();
        child
            .vertex_mut(QVid(0))
            .unwrap()
            .predicate_mut("city")
            .unwrap()
            .interval = Interval::one_of(["berlin", "dresden"]);
        assert_eq!(shape_signature(&parent), shape_signature(&child));
        assert_eq!(shape_hash(&parent), shape_hash(&child));
        assert_ne!(parent.signature(), child.signature());

        let mut structural = base();
        structural.remove_edge(QEid(0));
        assert_ne!(shape_signature(&parent), shape_signature(&structural));
    }

    #[test]
    fn component_signatures_survive_unrelated_changes() {
        // two disconnected pairs; relaxing one leaves the other's
        // component signature byte-identical
        let mut q = PatternQuery::new();
        let a = q.add_vertex(QueryVertex::with([Predicate::eq("type", "person")]));
        let b = q.add_vertex(QueryVertex::with([Predicate::eq("type", "city")]));
        q.add_edge(QueryEdge::typed(a, b, "livesIn"));
        let c = q.add_vertex(QueryVertex::with([Predicate::eq("type", "tag")]));
        let d = q.add_vertex(QueryVertex::with([Predicate::eq("type", "forum")]));
        q.add_edge(QueryEdge::typed(c, d, "hasTag"));

        let comps = q.weakly_connected_components();
        assert_eq!(comps.len(), 2);
        let before: Vec<String> = comps.iter().map(|cs| component_signature(&q, cs)).collect();

        let mut relaxed = q.clone();
        relaxed
            .vertex_mut(c)
            .unwrap()
            .predicate_mut("type")
            .unwrap()
            .interval = Interval::one_of(["tag", "tagclass"]);
        let rcomps = relaxed.weakly_connected_components();
        let after: Vec<String> = rcomps
            .iter()
            .map(|cs| component_signature(&relaxed, cs))
            .collect();

        assert_eq!(before[0], after[0], "untouched component key is stable");
        assert_ne!(before[1], after[1], "relaxed component key changes");
    }
}
