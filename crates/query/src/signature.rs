//! Canonical query signatures.
//!
//! The coarse-grained rewriter caches the cardinality of every executed
//! query candidate (§5.5, Appendix B.2). The cache key must identify a query
//! up to its *constraint content* — two candidates reached along different
//! relaxation paths but describing the same query must collide. Since query
//! element ids are stable and shared across all candidates derived from one
//! original query, a deterministic serialization in id order is canonical.

use crate::interval::Interval;
use crate::query::PatternQuery;
use std::fmt::Write;

impl PatternQuery {
    /// Deterministic, canonical textual signature of this query — the key
    /// the plan cache and the rewriters' memo tables share. Two queries
    /// with equal signatures have identical live elements (ids, predicate
    /// sets, type disjunctions, direction sets), so any compilation or
    /// plan derived from one is valid for the other. Element ids are part
    /// of the signature: relabeled-but-isomorphic queries deliberately get
    /// *distinct* signatures — a cached plan binds concrete `QVid`/`QEid`
    /// slots and must never be served to a query with different ids.
    pub fn signature(&self) -> String {
        signature(self)
    }

    /// FNV-1a hash of [`PatternQuery::signature`] — a stable, platform-
    /// independent `u64` for callers that want a fixed-width cache key.
    /// Collisions are possible; cache implementations must verify the full
    /// signature on a hash hit before serving a cached plan.
    pub fn signature_hash(&self) -> u64 {
        fnv1a(&self.signature())
    }
}

/// Deterministic, canonical textual signature of a query.
pub fn signature(q: &PatternQuery) -> String {
    let mut out = String::new();
    for v in q.vertex_ids() {
        write_vertex_sig(&mut out, q, v, false);
    }
    for e in q.edge_ids() {
        write_edge_sig(&mut out, q, e, false);
    }
    out
}

/// Append the canonical signature block for one live vertex. With
/// `blank_intervals` the interval *contents* are replaced by `*` while the
/// attribute names stay — the shape-signature building block used by
/// [`crate::delta`].
pub(crate) fn write_vertex_sig(
    out: &mut String,
    q: &PatternQuery,
    v: crate::query::QVid,
    blank_intervals: bool,
) {
    let vx = q.vertex(v).expect("live");
    let _ = write!(out, "V{}[", v.0);
    let mut preds: Vec<String> = vx
        .predicates
        .iter()
        .map(|p| {
            format!(
                "{}:{}",
                p.attr,
                pred_interval_sig(&p.interval, blank_intervals)
            )
        })
        .collect();
    preds.sort();
    preds.dedup();
    out.push_str(&preds.join(","));
    out.push(']');
}

/// Append the canonical signature block for one live edge (see
/// [`write_vertex_sig`] for `blank_intervals`).
pub(crate) fn write_edge_sig(
    out: &mut String,
    q: &PatternQuery,
    e: crate::query::QEid,
    blank_intervals: bool,
) {
    let ed = q.edge(e).expect("live");
    let _ = write!(
        out,
        "E{}({}->{})d{}{}t[",
        e.0,
        ed.src.0,
        ed.dst.0,
        u8::from(ed.directions.forward),
        u8::from(ed.directions.backward)
    );
    let mut tys = ed.types.clone();
    tys.sort();
    tys.dedup();
    out.push_str(&tys.join("|"));
    out.push_str("]p[");
    let mut preds: Vec<String> = ed
        .predicates
        .iter()
        .map(|p| {
            format!(
                "{}:{}",
                p.attr,
                pred_interval_sig(&p.interval, blank_intervals)
            )
        })
        .collect();
    preds.sort();
    preds.dedup();
    out.push_str(&preds.join(","));
    out.push(']');
}

fn pred_interval_sig(i: &Interval, blank: bool) -> String {
    if blank {
        "*".to_string()
    } else {
        interval_sig(i)
    }
}

/// Stable FNV-1a hash of an arbitrary signature string.
pub(crate) fn fnv1a(s: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Canonical textual signature of one predicate interval — shared by the
/// full-query signature and the per-element comparisons in [`crate::delta`].
pub(crate) fn interval_sig(i: &Interval) -> String {
    match i {
        Interval::OneOf(vals) => {
            let mut parts: Vec<String> = vals.iter().map(|v| format!("{v}")).collect();
            parts.sort();
            parts.dedup();
            format!("{{{}}}", parts.join("|"))
        }
        Interval::Range {
            lo,
            hi,
            lo_incl,
            hi_incl,
        } => format!(
            "r{}{:?}..{:?}{}",
            if *lo_incl { "[" } else { "(" },
            lo,
            hi,
            if *hi_incl { "]" } else { ")" }
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::query::{QueryEdge, QueryVertex};

    fn base() -> PatternQuery {
        let mut q = PatternQuery::new();
        let a = q.add_vertex(QueryVertex::with([Predicate::eq("type", "person")]));
        let b = q.add_vertex(QueryVertex::with([Predicate::eq("type", "city")]));
        q.add_edge(QueryEdge::typed(a, b, "livesIn"));
        q
    }

    #[test]
    fn identical_queries_share_signature() {
        assert_eq!(signature(&base()), signature(&base()));
    }

    #[test]
    fn predicate_order_does_not_matter() {
        let mut q1 = PatternQuery::new();
        q1.add_vertex(QueryVertex::with([
            Predicate::eq("a", 1),
            Predicate::eq("b", 2),
        ]));
        let mut q2 = PatternQuery::new();
        q2.add_vertex(QueryVertex::with([
            Predicate::eq("b", 2),
            Predicate::eq("a", 1),
        ]));
        assert_eq!(signature(&q1), signature(&q2));
    }

    #[test]
    fn duplicates_do_not_matter() {
        // duplicate predicates, edge types and disjunction values are
        // idempotent under conjunction/disjunction — canonicalize them away
        // so reordered-and-duplicated queries share one plan-cache slot
        let mut q1 = PatternQuery::new();
        let a1 = q1.add_vertex(QueryVertex::with([
            Predicate::eq("a", 1),
            Predicate::eq("a", 1),
            Predicate::one_of("t", ["x", "x", "y"]),
        ]));
        let b1 = q1.add_vertex(QueryVertex::any());
        let mut e1 = QueryEdge::typed(a1, b1, "knows");
        e1.types.push("knows".into());
        q1.add_edge(e1);

        let mut q2 = PatternQuery::new();
        let a2 = q2.add_vertex(QueryVertex::with([
            Predicate::one_of("t", ["y", "x"]),
            Predicate::eq("a", 1),
        ]));
        let b2 = q2.add_vertex(QueryVertex::any());
        q2.add_edge(QueryEdge::typed(a2, b2, "knows"));

        assert_eq!(signature(&q1), signature(&q2));
    }

    #[test]
    fn different_intervals_different_signatures() {
        let q1 = base();
        let mut q2 = base();
        q2.vertex_mut(crate::query::QVid(0))
            .unwrap()
            .predicate_mut("type")
            .unwrap()
            .interval = Interval::one_of(["person", "robot"]);
        assert_ne!(signature(&q1), signature(&q2));
    }

    #[test]
    fn removal_changes_signature() {
        let q1 = base();
        let mut q2 = base();
        q2.remove_edge(crate::query::QEid(0));
        assert_ne!(signature(&q1), signature(&q2));
    }
}
