//! Complex modification operations (§3.2.1, Fig. 3.2).
//!
//! Several basic operations of Table 3.1 executed as one semantic step.
//! The thesis classifies them by target: *vertex-oriented* (vertex
//! exclusion, predicate extension, vertex cleaving), *edge-oriented* (edge
//! exclusion, type substitution, path cleaving) and *subgraph-oriented*
//! (densification, extension, relaxation). Each complex operation expands
//! into a sequence of [`GraphMod`]s applied atomically — if any step fails
//! the query is left untouched.

use crate::direction::DirectionSet;
use crate::interval::Interval;
use crate::modification::{GraphMod, ModError, Target};
use crate::predicate::Predicate;
use crate::query::{PatternQuery, QEid, QVid};
use whyq_graph::Value;

/// A composite modification.
#[derive(Debug, Clone, PartialEq)]
pub enum ComplexOp {
    /// *Vertex exclusion* — remove a vertex but keep the path through it:
    /// incident edge pairs are re-wired into direct edges between the
    /// vertex's neighbors (the inverse of vertex cleaving).
    VertexExclusion {
        /// The vertex to splice out.
        vertex: QVid,
        /// Type given to the bridging edges.
        bridge_type: String,
    },
    /// *Vertex cleaving* — split a path edge by introducing a fresh
    /// intermediate vertex: `a -e-> b` becomes `a -> new -> b`.
    PathCleaving {
        /// The edge to split.
        edge: QEid,
        /// Predicates of the new intermediate vertex.
        predicates: Vec<Predicate>,
    },
    /// *Predicate extension* — widen an existing predicate interval with
    /// extra values (a deletion + insertion of the interval, per §3.2.1).
    PredicateExtension {
        /// Element carrying the predicate.
        target: Target,
        /// Attribute to widen.
        attr: String,
        /// Values to add to the interval.
        values: Vec<Value>,
    },
    /// *Type substitution* — replace one admitted edge type by another.
    TypeSubstitution {
        /// Edge to modify.
        edge: QEid,
        /// Type to remove.
        from: String,
        /// Type to add.
        to: String,
    },
    /// *Subgraph densification* — add edges between existing vertices
    /// (vertex count unchanged, edge count grows).
    SubgraphDensification {
        /// `(src, dst, type)` triples for new edges.
        edges: Vec<(QVid, QVid, String)>,
    },
    /// *Subgraph extension* — grow both vertex and edge counts: a fresh
    /// vertex attached to an existing one.
    SubgraphExtension {
        /// Vertex to attach to.
        anchor: QVid,
        /// Predicates of the new vertex.
        predicates: Vec<Predicate>,
        /// Type of the connecting edge (drawn anchor → new vertex).
        edge_type: String,
    },
    /// *Subgraph relaxation* — drop all attribute predicates of a set of
    /// elements at once, keeping the topology.
    SubgraphRelaxation {
        /// Elements whose predicates are discarded.
        targets: Vec<Target>,
    },
}

impl ComplexOp {
    /// Expand into the equivalent sequence of basic operations against the
    /// current state of `q` (the expansion inspects the query, e.g. to
    /// enumerate incident edges of an excluded vertex).
    pub fn expand(&self, q: &PatternQuery) -> Result<Vec<GraphMod>, ModError> {
        match self {
            ComplexOp::VertexExclusion {
                vertex,
                bridge_type,
            } => {
                if q.vertex(*vertex).is_none() {
                    return Err(ModError::NoSuchVertex(*vertex));
                }
                let mut mods = Vec::new();
                // neighbors in drawing order: in-neighbors bridge to
                // out-neighbors (path semantics)
                let ins: Vec<QVid> = q
                    .in_edges(*vertex)
                    .into_iter()
                    .map(|e| q.edge(e).expect("live").src)
                    .collect();
                let outs: Vec<QVid> = q
                    .out_edges(*vertex)
                    .into_iter()
                    .map(|e| q.edge(e).expect("live").dst)
                    .collect();
                mods.push(GraphMod::RemoveVertex(*vertex));
                for &a in &ins {
                    for &b in &outs {
                        if a != b && a != *vertex && b != *vertex {
                            mods.push(GraphMod::InsertEdge {
                                src: a,
                                dst: b,
                                types: vec![bridge_type.clone()],
                                directions: DirectionSet::FORWARD,
                                predicates: vec![],
                            });
                        }
                    }
                }
                Ok(mods)
            }
            ComplexOp::PathCleaving { edge, predicates } => {
                let ed = q.edge(*edge).ok_or(ModError::NoSuchEdge(*edge))?.clone();
                // the new vertex id is only known at apply time; encode the
                // rewiring with the convention that InsertVertex precedes
                // the edges referring to it (resolved by `apply`)
                Ok(vec![
                    GraphMod::RemoveEdge(*edge),
                    GraphMod::InsertVertex {
                        predicates: predicates.clone(),
                    },
                    // placeholders — fixed up by `apply` with the real id
                    GraphMod::InsertEdge {
                        src: ed.src,
                        dst: ed.src, // overwritten
                        types: ed.types.clone(),
                        directions: ed.directions,
                        predicates: ed.predicates.clone(),
                    },
                    GraphMod::InsertEdge {
                        src: ed.dst, // overwritten
                        dst: ed.dst,
                        types: ed.types.clone(),
                        directions: ed.directions,
                        predicates: vec![],
                    },
                ])
            }
            ComplexOp::PredicateExtension {
                target,
                attr,
                values,
            } => {
                let preds = match target {
                    Target::Vertex(v) => {
                        &q.vertex(*v).ok_or(ModError::NoSuchVertex(*v))?.predicates
                    }
                    Target::Edge(e) => &q.edge(*e).ok_or(ModError::NoSuchEdge(*e))?.predicates,
                };
                let p = preds
                    .iter()
                    .find(|p| p.attr == *attr)
                    .ok_or_else(|| ModError::NoSuchPredicate(attr.clone()))?;
                let mut widened = p.interval.clone();
                let mut changed = false;
                for v in values {
                    changed |= widened.add_value(v.clone());
                }
                if !changed {
                    return Err(ModError::NoChange);
                }
                Ok(vec![GraphMod::ReplaceInterval {
                    target: *target,
                    attr: attr.clone(),
                    interval: widened,
                }])
            }
            ComplexOp::TypeSubstitution { edge, from, to } => Ok(vec![
                GraphMod::InsertType {
                    edge: *edge,
                    ty: to.clone(),
                },
                GraphMod::RemoveType {
                    edge: *edge,
                    ty: from.clone(),
                },
            ]),
            ComplexOp::SubgraphDensification { edges } => Ok(edges
                .iter()
                .map(|(src, dst, ty)| GraphMod::InsertEdge {
                    src: *src,
                    dst: *dst,
                    types: vec![ty.clone()],
                    directions: DirectionSet::FORWARD,
                    predicates: vec![],
                })
                .collect()),
            ComplexOp::SubgraphExtension {
                anchor,
                predicates,
                edge_type,
            } => {
                if q.vertex(*anchor).is_none() {
                    return Err(ModError::NoSuchVertex(*anchor));
                }
                Ok(vec![
                    GraphMod::InsertVertex {
                        predicates: predicates.clone(),
                    },
                    // placeholder edge — fixed up by `apply`
                    GraphMod::InsertEdge {
                        src: *anchor,
                        dst: *anchor, // overwritten with the new vertex id
                        types: vec![edge_type.clone()],
                        directions: DirectionSet::FORWARD,
                        predicates: vec![],
                    },
                ])
            }
            ComplexOp::SubgraphRelaxation { targets } => {
                let mut mods = Vec::new();
                for t in targets {
                    let preds = match t {
                        Target::Vertex(v) => {
                            &q.vertex(*v).ok_or(ModError::NoSuchVertex(*v))?.predicates
                        }
                        Target::Edge(e) => &q.edge(*e).ok_or(ModError::NoSuchEdge(*e))?.predicates,
                    };
                    for p in preds {
                        mods.push(GraphMod::RemovePredicate {
                            target: *t,
                            attr: p.attr.clone(),
                        });
                    }
                }
                Ok(mods)
            }
        }
    }

    /// Apply atomically to a clone of `q`; the original is untouched on
    /// error. Vertex-creating operations rewire the placeholder edges to
    /// the freshly assigned vertex id.
    pub fn applied(&self, q: &PatternQuery) -> Result<PatternQuery, ModError> {
        let mods = self.expand(q)?;
        let mut out = q.clone();
        let mut new_vertex: Option<QVid> = None;
        for (i, m) in mods.iter().enumerate() {
            let mut m = m.clone();
            // fix up placeholder endpoints referring to the created vertex
            if let GraphMod::InsertEdge { src, dst, .. } = &mut m {
                if let Some(nv) = new_vertex {
                    match self {
                        ComplexOp::PathCleaving { .. } => {
                            // first inserted edge: src stays, dst → new;
                            // second: src → new, dst stays
                            if i == 2 {
                                *dst = nv;
                            } else if i == 3 {
                                *src = nv;
                            }
                        }
                        ComplexOp::SubgraphExtension { .. } => {
                            *dst = nv;
                        }
                        _ => {}
                    }
                }
            }
            let receipt = m.apply(&mut out)?;
            if let Some(nv) = receipt.new_vertex {
                new_vertex = Some(nv);
            }
        }
        Ok(out)
    }

    /// Does the operation relax (true) or restrict (false) the query, in
    /// the Fig. 3.2 classification? `None` for mixed effects.
    pub fn is_relaxation(&self) -> Option<bool> {
        match self {
            ComplexOp::VertexExclusion { .. } | ComplexOp::SubgraphRelaxation { .. } => Some(true),
            ComplexOp::PredicateExtension { .. } => Some(true),
            ComplexOp::SubgraphDensification { .. }
            | ComplexOp::SubgraphExtension { .. }
            | ComplexOp::PathCleaving { .. } => Some(false),
            ComplexOp::TypeSubstitution { .. } => None,
        }
    }
}

/// Convenience: widen a predicate interval into an explicit new interval
/// (deletion + insertion as one step, §3.2.1).
pub fn interval_change(target: Target, attr: &str, interval: Interval) -> GraphMod {
    GraphMod::ReplaceInterval {
        target,
        attr: attr.to_string(),
        interval,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;

    fn path3() -> PatternQuery {
        QueryBuilder::new("p3")
            .vertex("a", [Predicate::eq("type", "person")])
            .vertex("b", [Predicate::eq("type", "person")])
            .vertex("c", [Predicate::eq("type", "city")])
            .edge("a", "b", "knows")
            .edge("b", "c", "livesIn")
            .build()
    }

    #[test]
    fn vertex_exclusion_bridges_neighbors() {
        let q = path3();
        let op = ComplexOp::VertexExclusion {
            vertex: QVid(1),
            bridge_type: "knowsSomeoneIn".into(),
        };
        let out = op.applied(&q).unwrap();
        assert_eq!(out.num_vertices(), 2);
        assert_eq!(out.num_edges(), 1);
        let bridge = out.edge_ids().next().unwrap();
        let e = out.edge(bridge).unwrap();
        assert_eq!(e.src, QVid(0));
        assert_eq!(e.dst, QVid(2));
        assert_eq!(e.types, vec!["knowsSomeoneIn".to_string()]);
    }

    #[test]
    fn path_cleaving_splits_an_edge() {
        let q = path3();
        let op = ComplexOp::PathCleaving {
            edge: QEid(0),
            predicates: vec![Predicate::eq("type", "person")],
        };
        let out = op.applied(&q).unwrap();
        assert_eq!(out.num_vertices(), 4);
        assert_eq!(out.num_edges(), 3);
        assert!(out.is_connected());
        // the split edge is gone
        assert!(out.edge(QEid(0)).is_none());
    }

    #[test]
    fn predicate_extension_widens() {
        let q = path3();
        let op = ComplexOp::PredicateExtension {
            target: Target::Vertex(QVid(2)),
            attr: "type".into(),
            values: vec![Value::str("village")],
        };
        let out = op.applied(&q).unwrap();
        let i = &out
            .vertex(QVid(2))
            .unwrap()
            .predicate("type")
            .unwrap()
            .interval;
        assert!(i.matches(&Value::str("village")));
        assert!(i.matches(&Value::str("city")));
        // no-op extension is rejected
        let noop = ComplexOp::PredicateExtension {
            target: Target::Vertex(QVid(2)),
            attr: "type".into(),
            values: vec![Value::str("city")],
        };
        assert_eq!(noop.applied(&q).unwrap_err(), ModError::NoChange);
    }

    #[test]
    fn type_substitution() {
        let q = path3();
        let op = ComplexOp::TypeSubstitution {
            edge: QEid(0),
            from: "knows".into(),
            to: "follows".into(),
        };
        let out = op.applied(&q).unwrap();
        assert_eq!(
            out.edge(QEid(0)).unwrap().types,
            vec!["follows".to_string()]
        );
    }

    #[test]
    fn densification_and_extension() {
        let q = path3();
        let dense = ComplexOp::SubgraphDensification {
            edges: vec![(QVid(0), QVid(2), "visits".into())],
        };
        let out = dense.applied(&q).unwrap();
        assert_eq!(out.num_edges(), 3);
        assert_eq!(out.num_vertices(), 3);

        let ext = ComplexOp::SubgraphExtension {
            anchor: QVid(0),
            predicates: vec![Predicate::eq("type", "company")],
            edge_type: "workAt".into(),
        };
        let out = ext.applied(&q).unwrap();
        assert_eq!(out.num_vertices(), 4);
        assert_eq!(out.num_edges(), 3);
        let new_edge = out
            .edge_ids()
            .find(|&e| out.edge(e).unwrap().types == vec!["workAt".to_string()])
            .unwrap();
        assert_eq!(out.edge(new_edge).unwrap().src, QVid(0));
    }

    #[test]
    fn subgraph_relaxation_strips_predicates() {
        let q = path3();
        let op = ComplexOp::SubgraphRelaxation {
            targets: vec![Target::Vertex(QVid(0)), Target::Vertex(QVid(1))],
        };
        let out = op.applied(&q).unwrap();
        assert!(out.vertex(QVid(0)).unwrap().predicates.is_empty());
        assert!(out.vertex(QVid(1)).unwrap().predicates.is_empty());
        assert!(!out.vertex(QVid(2)).unwrap().predicates.is_empty());
    }

    #[test]
    fn atomicity_on_error() {
        let q = path3();
        let op = ComplexOp::VertexExclusion {
            vertex: QVid(9),
            bridge_type: "x".into(),
        };
        assert!(op.applied(&q).is_err());
        // query untouched
        assert_eq!(q.num_vertices(), 3);
    }

    #[test]
    fn relaxation_classification() {
        assert_eq!(
            ComplexOp::SubgraphRelaxation { targets: vec![] }.is_relaxation(),
            Some(true)
        );
        assert_eq!(
            ComplexOp::SubgraphDensification { edges: vec![] }.is_relaxation(),
            Some(false)
        );
        assert_eq!(
            ComplexOp::TypeSubstitution {
                edge: QEid(0),
                from: "a".into(),
                to: "b".into()
            }
            .is_relaxation(),
            None
        );
    }
}
