//! Graph-edit modification operations for pattern queries.
//!
//! Implements the basic operations of Table 3.1 — topological
//! (edge/vertex/direction insertion and deletion) and predicate-level
//! (predicate/type insertion and deletion) — plus the complex
//! interval-replacement operation used by fine-grained rewriting (§6.2.2).
//!
//! Every operation is classified as a **relaxation** (removes constraints,
//! can only grow the result set) or a **concretization** (adds constraints,
//! can only shrink it); the classification drives the direction of search in
//! the modification-based explanation generators.

use crate::direction::{Direction, DirectionSet};
use crate::interval::Interval;
use crate::predicate::Predicate;
use crate::query::{PatternQuery, QEid, QVid, QueryEdge, QueryVertex};
use std::fmt;

/// The query element a predicate-level modification applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// A query vertex.
    Vertex(QVid),
    /// A query edge.
    Edge(QEid),
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Vertex(v) => write!(f, "{v}"),
            Target::Edge(e) => write!(f, "{e}"),
        }
    }
}

/// Whether an operation can only grow or only shrink the result set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModKind {
    /// Removes constraints (Table 3.1 "relaxation operation").
    Relaxation,
    /// Adds constraints (Table 3.1 "concretization operation").
    Concretization,
    /// Replaces a value set — may grow or shrink the result.
    Neutral,
}

/// A single modification of a pattern query.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphMod {
    /// Delete a query edge (topological relaxation).
    RemoveEdge(QEid),
    /// Delete a query vertex and its incident edges (topological
    /// relaxation; the incident-edge removal makes this the *vertex
    /// exclusion* complex operation of Fig. 3.2).
    RemoveVertex(QVid),
    /// Drop one admissible direction from an edge (concretization — fewer
    /// data edges match).
    RemoveDirection {
        /// Edge to modify.
        edge: QEid,
        /// Direction to remove.
        dir: Direction,
    },
    /// Insert a new edge between existing vertices (topological
    /// concretization).
    InsertEdge {
        /// Source query vertex.
        src: QVid,
        /// Target query vertex.
        dst: QVid,
        /// Type disjunction of the new edge.
        types: Vec<String>,
        /// Admissible directions of the new edge.
        directions: DirectionSet,
        /// Attribute predicates of the new edge.
        predicates: Vec<Predicate>,
    },
    /// Insert a fresh unconstrained-by-topology vertex (concretization in
    /// the sense of Table 3.1: the query description grows).
    InsertVertex {
        /// Attribute predicates of the new vertex.
        predicates: Vec<Predicate>,
    },
    /// Add an admissible direction to an edge (relaxation).
    InsertDirection {
        /// Edge to modify.
        edge: QEid,
        /// Direction to add.
        dir: Direction,
    },
    /// Remove an attribute predicate (relaxation).
    RemovePredicate {
        /// Element carrying the predicate.
        target: Target,
        /// Attribute name of the predicate to drop.
        attr: String,
    },
    /// Add an attribute predicate (concretization).
    InsertPredicate {
        /// Element to constrain.
        target: Target,
        /// The new predicate.
        predicate: Predicate,
    },
    /// Remove one type from an edge's type disjunction (concretization —
    /// fewer data edges match; removing the *last* type means "any type",
    /// which is treated as an error to keep the operation monotone).
    RemoveType {
        /// Edge to modify.
        edge: QEid,
        /// Type name to remove.
        ty: String,
    },
    /// Add a type to an edge's type disjunction (relaxation).
    InsertType {
        /// Edge to modify.
        edge: QEid,
        /// Type name to add.
        ty: String,
    },
    /// Replace the interval of an existing predicate (complex operation:
    /// predicate deletion + insertion, §3.2.1).
    ReplaceInterval {
        /// Element carrying the predicate.
        target: Target,
        /// Attribute whose interval is replaced.
        attr: String,
        /// The new interval.
        interval: Interval,
    },
}

/// What `apply` did — ids assigned to inserted elements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Receipt {
    /// Id of a vertex created by `InsertVertex`.
    pub new_vertex: Option<QVid>,
    /// Id of an edge created by `InsertEdge`.
    pub new_edge: Option<QEid>,
}

/// Errors applying a modification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModError {
    /// Referenced vertex is absent.
    NoSuchVertex(QVid),
    /// Referenced edge is absent.
    NoSuchEdge(QEid),
    /// Referenced predicate is absent.
    NoSuchPredicate(String),
    /// Predicate with this attribute already exists on the target.
    DuplicatePredicate(String),
    /// Type already present / absent as required.
    TypeConflict(String),
    /// Direction edit would empty the direction set or duplicate a member.
    DirectionConflict,
    /// The operation would not change the query.
    NoChange,
}

impl fmt::Display for ModError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModError::NoSuchVertex(v) => write!(f, "no such query vertex {v}"),
            ModError::NoSuchEdge(e) => write!(f, "no such query edge {e}"),
            ModError::NoSuchPredicate(a) => write!(f, "no predicate on attribute {a:?}"),
            ModError::DuplicatePredicate(a) => write!(f, "predicate on {a:?} already exists"),
            ModError::TypeConflict(t) => write!(f, "type conflict on {t:?}"),
            ModError::DirectionConflict => write!(f, "direction edit invalid"),
            ModError::NoChange => write!(f, "operation does not change the query"),
        }
    }
}

impl std::error::Error for ModError {}

impl GraphMod {
    /// Relaxation / concretization classification (Table 3.1).
    pub fn kind(&self) -> ModKind {
        match self {
            GraphMod::RemoveEdge(_)
            | GraphMod::RemoveVertex(_)
            | GraphMod::RemovePredicate { .. }
            | GraphMod::InsertType { .. }
            | GraphMod::InsertDirection { .. } => ModKind::Relaxation,
            GraphMod::InsertEdge { .. }
            | GraphMod::InsertVertex { .. }
            | GraphMod::InsertPredicate { .. }
            | GraphMod::RemoveType { .. }
            | GraphMod::RemoveDirection { .. } => ModKind::Concretization,
            GraphMod::ReplaceInterval { .. } => ModKind::Neutral,
        }
    }

    /// Is this a topology-level change (vs a predicate-level one)?
    pub fn is_topological(&self) -> bool {
        matches!(
            self,
            GraphMod::RemoveEdge(_)
                | GraphMod::RemoveVertex(_)
                | GraphMod::InsertEdge { .. }
                | GraphMod::InsertVertex { .. }
        )
    }

    /// Apply the modification to `q`.
    pub fn apply(&self, q: &mut PatternQuery) -> Result<Receipt, ModError> {
        let mut receipt = Receipt::default();
        match self {
            GraphMod::RemoveEdge(e) => {
                q.remove_edge(*e).ok_or(ModError::NoSuchEdge(*e))?;
            }
            GraphMod::RemoveVertex(v) => {
                q.remove_vertex(*v).ok_or(ModError::NoSuchVertex(*v))?;
            }
            GraphMod::RemoveDirection { edge, dir } => {
                let ed = q.edge_mut(*edge).ok_or(ModError::NoSuchEdge(*edge))?;
                if !ed.directions.contains(*dir) || ed.directions.len() == 1 {
                    return Err(ModError::DirectionConflict);
                }
                ed.directions.remove(*dir);
            }
            GraphMod::InsertDirection { edge, dir } => {
                let ed = q.edge_mut(*edge).ok_or(ModError::NoSuchEdge(*edge))?;
                if !ed.directions.insert(*dir) {
                    return Err(ModError::DirectionConflict);
                }
            }
            GraphMod::InsertEdge {
                src,
                dst,
                types,
                directions,
                predicates,
            } => {
                if q.vertex(*src).is_none() {
                    return Err(ModError::NoSuchVertex(*src));
                }
                if q.vertex(*dst).is_none() {
                    return Err(ModError::NoSuchVertex(*dst));
                }
                let id = q.add_edge(QueryEdge {
                    src: *src,
                    dst: *dst,
                    types: types.clone(),
                    directions: *directions,
                    predicates: predicates.clone(),
                    label: None,
                });
                receipt.new_edge = Some(id);
            }
            GraphMod::InsertVertex { predicates } => {
                let id = q.add_vertex(QueryVertex::with(predicates.iter().cloned()));
                receipt.new_vertex = Some(id);
            }
            GraphMod::RemovePredicate { target, attr } => {
                let preds = predicates_mut(q, *target)?;
                let before = preds.len();
                preds.retain(|p| p.attr != *attr);
                if preds.len() == before {
                    return Err(ModError::NoSuchPredicate(attr.clone()));
                }
            }
            GraphMod::InsertPredicate { target, predicate } => {
                let preds = predicates_mut(q, *target)?;
                if preds.iter().any(|p| p.attr == predicate.attr) {
                    return Err(ModError::DuplicatePredicate(predicate.attr.clone()));
                }
                preds.push(predicate.clone());
            }
            GraphMod::RemoveType { edge, ty } => {
                let ed = q.edge_mut(*edge).ok_or(ModError::NoSuchEdge(*edge))?;
                if !ed.types.iter().any(|t| t == ty) {
                    return Err(ModError::TypeConflict(ty.clone()));
                }
                if ed.types.len() == 1 {
                    // dropping the last type would *relax* to "any type"
                    return Err(ModError::TypeConflict(ty.clone()));
                }
                ed.types.retain(|t| t != ty);
            }
            GraphMod::InsertType { edge, ty } => {
                let ed = q.edge_mut(*edge).ok_or(ModError::NoSuchEdge(*edge))?;
                if ed.types.iter().any(|t| t == ty) {
                    return Err(ModError::TypeConflict(ty.clone()));
                }
                ed.types.push(ty.clone());
            }
            GraphMod::ReplaceInterval {
                target,
                attr,
                interval,
            } => {
                let preds = predicates_mut(q, *target)?;
                let p = preds
                    .iter_mut()
                    .find(|p| p.attr == *attr)
                    .ok_or_else(|| ModError::NoSuchPredicate(attr.clone()))?;
                if p.interval == *interval {
                    return Err(ModError::NoChange);
                }
                p.interval = interval.clone();
            }
        }
        Ok(receipt)
    }

    /// Apply to a clone, leaving `q` untouched.
    pub fn applied(&self, q: &PatternQuery) -> Result<(PatternQuery, Receipt), ModError> {
        let mut clone = q.clone();
        let receipt = self.apply(&mut clone)?;
        Ok((clone, receipt))
    }
}

fn predicates_mut(q: &mut PatternQuery, target: Target) -> Result<&mut Vec<Predicate>, ModError> {
    match target {
        Target::Vertex(v) => q
            .vertex_mut(v)
            .map(|vx| &mut vx.predicates)
            .ok_or(ModError::NoSuchVertex(v)),
        Target::Edge(e) => q
            .edge_mut(e)
            .map(|ed| &mut ed.predicates)
            .ok_or(ModError::NoSuchEdge(e)),
    }
}

impl fmt::Display for GraphMod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphMod::RemoveEdge(e) => write!(f, "remove edge {e}"),
            GraphMod::RemoveVertex(v) => write!(f, "remove vertex {v}"),
            GraphMod::RemoveDirection { edge, dir } => {
                write!(f, "remove direction {dir:?} from {edge}")
            }
            GraphMod::InsertDirection { edge, dir } => {
                write!(f, "add direction {dir:?} to {edge}")
            }
            GraphMod::InsertEdge {
                src, dst, types, ..
            } => {
                write!(f, "insert edge {src}->{dst} ({})", types.join("|"))
            }
            GraphMod::InsertVertex { .. } => write!(f, "insert vertex"),
            GraphMod::RemovePredicate { target, attr } => {
                write!(f, "remove predicate {attr:?} from {target}")
            }
            GraphMod::InsertPredicate { target, predicate } => {
                write!(f, "insert predicate [{predicate}] on {target}")
            }
            GraphMod::RemoveType { edge, ty } => write!(f, "remove type {ty:?} from {edge}"),
            GraphMod::InsertType { edge, ty } => write!(f, "add type {ty:?} to {edge}"),
            GraphMod::ReplaceInterval {
                target,
                attr,
                interval,
            } => {
                write!(f, "set {attr:?} on {target} to {interval}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{PatternQuery, QueryEdge, QueryVertex};

    fn pair() -> (PatternQuery, QVid, QVid, QEid) {
        let mut q = PatternQuery::new();
        let a = q.add_vertex(QueryVertex::with([Predicate::eq("type", "person")]));
        let b = q.add_vertex(QueryVertex::with([Predicate::eq("type", "city")]));
        let e = q.add_edge(QueryEdge::typed(a, b, "livesIn"));
        (q, a, b, e)
    }

    #[test]
    fn remove_and_insert_predicate() {
        let (mut q, a, _, _) = pair();
        GraphMod::RemovePredicate {
            target: Target::Vertex(a),
            attr: "type".into(),
        }
        .apply(&mut q)
        .unwrap();
        assert!(q.vertex(a).unwrap().predicates.is_empty());
        GraphMod::InsertPredicate {
            target: Target::Vertex(a),
            predicate: Predicate::eq("age", 30),
        }
        .apply(&mut q)
        .unwrap();
        assert!(q.vertex(a).unwrap().predicate("age").is_some());
        // duplicate insert rejected
        let err = GraphMod::InsertPredicate {
            target: Target::Vertex(a),
            predicate: Predicate::eq("age", 31),
        }
        .apply(&mut q)
        .unwrap_err();
        assert_eq!(err, ModError::DuplicatePredicate("age".into()));
    }

    #[test]
    fn type_edits() {
        let (mut q, _, _, e) = pair();
        GraphMod::InsertType {
            edge: e,
            ty: "worksIn".into(),
        }
        .apply(&mut q)
        .unwrap();
        assert_eq!(q.edge(e).unwrap().types.len(), 2);
        GraphMod::RemoveType {
            edge: e,
            ty: "livesIn".into(),
        }
        .apply(&mut q)
        .unwrap();
        assert_eq!(q.edge(e).unwrap().types, vec!["worksIn".to_string()]);
        // cannot drop the last type
        assert!(GraphMod::RemoveType {
            edge: e,
            ty: "worksIn".into()
        }
        .apply(&mut q)
        .is_err());
    }

    #[test]
    fn direction_edits() {
        let (mut q, _, _, e) = pair();
        GraphMod::InsertDirection {
            edge: e,
            dir: Direction::Backward,
        }
        .apply(&mut q)
        .unwrap();
        assert_eq!(q.edge(e).unwrap().directions, DirectionSet::BOTH);
        GraphMod::RemoveDirection {
            edge: e,
            dir: Direction::Forward,
        }
        .apply(&mut q)
        .unwrap();
        assert_eq!(q.edge(e).unwrap().directions, DirectionSet::BACKWARD);
        // cannot empty the set
        assert!(GraphMod::RemoveDirection {
            edge: e,
            dir: Direction::Backward
        }
        .apply(&mut q)
        .is_err());
    }

    #[test]
    fn topology_edits_report_new_ids() {
        let (mut q, a, b, _) = pair();
        let r = GraphMod::InsertEdge {
            src: b,
            dst: a,
            types: vec!["near".into()],
            directions: DirectionSet::FORWARD,
            predicates: vec![],
        }
        .apply(&mut q)
        .unwrap();
        assert!(r.new_edge.is_some());
        assert_eq!(q.num_edges(), 2);
        let r2 = GraphMod::InsertVertex { predicates: vec![] }
            .apply(&mut q)
            .unwrap();
        assert!(r2.new_vertex.is_some());
    }

    #[test]
    fn replace_interval_rejects_noop() {
        let (mut q, a, _, _) = pair();
        let m = GraphMod::ReplaceInterval {
            target: Target::Vertex(a),
            attr: "type".into(),
            interval: Interval::eq("person"),
        };
        assert_eq!(m.apply(&mut q).unwrap_err(), ModError::NoChange);
        let m2 = GraphMod::ReplaceInterval {
            target: Target::Vertex(a),
            attr: "type".into(),
            interval: Interval::one_of(["person", "robot"]),
        };
        m2.apply(&mut q).unwrap();
        assert!(q
            .vertex(a)
            .unwrap()
            .predicate("type")
            .unwrap()
            .interval
            .matches(&whyq_graph::Value::str("robot")));
    }

    #[test]
    fn applied_leaves_original_untouched() {
        let (q, a, ..) = pair();
        let (modified, _) = GraphMod::RemoveVertex(a).applied(&q).unwrap();
        assert_eq!(q.num_vertices(), 2);
        assert_eq!(modified.num_vertices(), 1);
        assert_eq!(modified.num_edges(), 0);
    }

    #[test]
    fn kind_classification() {
        assert_eq!(GraphMod::RemoveEdge(QEid(0)).kind(), ModKind::Relaxation);
        assert_eq!(
            GraphMod::InsertPredicate {
                target: Target::Vertex(QVid(0)),
                predicate: Predicate::eq("a", 1)
            }
            .kind(),
            ModKind::Concretization
        );
        assert_eq!(
            GraphMod::InsertType {
                edge: QEid(0),
                ty: "t".into()
            }
            .kind(),
            ModKind::Relaxation
        );
        assert!(GraphMod::RemoveVertex(QVid(0)).is_topological());
    }
}
