//! Predicates: named attribute constraints on query vertices and edges.

use crate::interval::Interval;
use whyq_graph::Value;

/// A constraint `attr ∈ interval` on one attribute of a query element.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Attribute name the constraint applies to.
    pub attr: String,
    /// Admissible value set.
    pub interval: Interval,
}

impl Predicate {
    /// `attr = value`.
    pub fn eq(attr: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate {
            attr: attr.into(),
            interval: Interval::eq(value),
        }
    }

    /// `attr ∈ {v₁, v₂, …}`.
    pub fn one_of<I, V>(attr: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Predicate {
            attr: attr.into(),
            interval: Interval::one_of(values),
        }
    }

    /// `lo ≤ attr ≤ hi`.
    pub fn between(attr: impl Into<String>, lo: f64, hi: f64) -> Self {
        Predicate {
            attr: attr.into(),
            interval: Interval::between(lo, hi),
        }
    }

    /// `attr ≥ lo`.
    pub fn at_least(attr: impl Into<String>, lo: f64) -> Self {
        Predicate {
            attr: attr.into(),
            interval: Interval::at_least(lo),
        }
    }

    /// `attr ≤ hi`.
    pub fn at_most(attr: impl Into<String>, hi: f64) -> Self {
        Predicate {
            attr: attr.into(),
            interval: Interval::at_most(hi),
        }
    }

    /// Does the (possibly absent) attribute value satisfy the predicate?
    /// A missing attribute never satisfies a predicate.
    ///
    /// This is the *decoded* evaluation path: string constants compare by
    /// text, whatever their physical encoding (`whyq_graph::Value` equates
    /// dictionary-encoded and plain strings). Engines that evaluate many
    /// candidates compile the predicate against a graph's value dictionary
    /// instead (`whyq_matcher::compile`), turning each string equality
    /// into a single integer comparison.
    pub fn matches(&self, value: Option<&Value>) -> bool {
        value.is_some_and(|v| self.interval.matches(v))
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ∈ {}", self.attr, self.interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_predicate() {
        let p = Predicate::eq("type", "person");
        assert!(p.matches(Some(&Value::str("person"))));
        assert!(!p.matches(Some(&Value::str("city"))));
        assert!(!p.matches(None));
    }

    #[test]
    fn range_predicates() {
        let p = Predicate::between("age", 18.0, 30.0);
        assert!(p.matches(Some(&Value::Int(25))));
        assert!(!p.matches(Some(&Value::Int(31))));
        assert!(Predicate::at_least("y", 5.0).matches(Some(&Value::Int(5))));
        assert!(Predicate::at_most("y", 5.0).matches(Some(&Value::Int(5))));
    }

    #[test]
    fn display() {
        assert_eq!(
            Predicate::eq("type", "person").to_string(),
            "type ∈ \"person\""
        );
    }
}
