//! The shared plan cache.
//!
//! Compiling a pattern query resolves every attribute name, edge type and
//! string constant against the graph's dictionaries and runs selectivity
//! estimation to order the search — work that is identical for every
//! execution of the same query over the same (immutable) database. The
//! why-query workloads repeat queries *heavily*: the relax loop and
//! TRAVERSESEARCHTREE execute hundreds of near-identical candidates, and a
//! service replays the same patterns verbatim across requests.
//!
//! `PlanCache` memoizes `(Compiled, bytecode program)` pairs in an LRU
//! keyed by the
//! canonical [`whyq_query::PatternQuery::signature`]. The signature
//! includes element ids, so only queries whose compiled slot layout is
//! byte-for-byte interchangeable share an entry — relabeled-but-isomorphic
//! queries deliberately get separate entries (a plan binds concrete
//! `QVid`/`QEid` slots). The cache is owned by the `Database` and shared
//! by every `Session`, so one session's compilation warms all of them.
//!
//! ## Compile-once under contention
//!
//! The cache stores [`PlanSlot`]s, not finished plans: probing for a
//! signature reserves (or finds) a slot under the cache lock in O(1), and
//! the *compilation* happens outside the lock through the slot's
//! [`OnceLock`]. Any number of sessions racing on one uncached signature
//! therefore serialize on that slot alone — exactly one of them compiles,
//! the rest block on the `OnceLock` and share the result — while probes
//! for other signatures proceed untouched. An entry evicted while a
//! compile is in flight simply detaches: the in-flight sessions finish on
//! the detached slot (their `Arc` keeps it alive) and a later probe
//! starts a fresh one.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use whyq_matcher::compile::Compiled;
use whyq_matcher::{QueryProgram, SeedList};
use whyq_query::AnalysisReport;

/// A memoized compilation: the dictionary-resolved query plus its
/// executable per-component bytecode programs (empty when the query is
/// unsatisfiable — executing it answers without any scan).
#[derive(Debug)]
pub struct CachedPlan {
    /// The compiled (dictionary-resolved) query.
    pub compiled: Arc<Compiled>,
    /// The optimized per-component bytecode programs the VM executes;
    /// empty ⇔ unsatisfiable (or the query has no vertices).
    pub program: Arc<QueryProgram>,
    /// The static-analysis report produced at prepare time
    /// ([`whyq_query::analyze_against`]). An unsatisfiable verdict here is
    /// why `program` is empty without any compilation having run; its
    /// [`AnalysisReport::conflict_set`] names the predicates to relax
    /// first.
    pub report: Arc<AnalysisReport>,
    /// Per-component seed candidate lists (program-indexed), materialized
    /// lazily by the first parallel execution. Graph and indexes are
    /// immutable for the database's lifetime, so the lists are computed
    /// once per cached plan and shared by every session and prepare —
    /// repeat `find_par`/`count_par` calls pay no bucket copies or
    /// disjunction-union sorts.
    pub seed_lists: OnceLock<Vec<SeedList>>,
}

/// One signature's compile-at-most-once cell. Handed out by
/// [`PlanCache::probe`]; the caller completes it via
/// [`PlanSlot::get_or_compile`] *outside* the cache lock.
#[derive(Debug, Default)]
pub struct PlanSlot {
    cell: OnceLock<Arc<CachedPlan>>,
}

impl PlanSlot {
    /// The cached plan, compiling it with `compile` if this slot has never
    /// been filled. Concurrent callers on one slot run `compile` exactly
    /// once; the others block until it finishes and share the result.
    pub fn get_or_compile(&self, compile: impl FnOnce() -> CachedPlan) -> Arc<CachedPlan> {
        Arc::clone(self.cell.get_or_init(|| Arc::new(compile())))
    }

    /// The plan, if some caller already compiled it.
    pub fn get(&self) -> Option<Arc<CachedPlan>> {
        self.cell.get().map(Arc::clone)
    }
}

/// Cumulative cache counters (exposed via `Session::cache_stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Prepares answered from the cache (slot already present — possibly
    /// still compiling under another session, which the prepare joins).
    pub hits: u64,
    /// Prepares that reserved a fresh slot (and will compile it, unless a
    /// concurrent prepare on the same fresh slot gets there first).
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
}

struct Entry {
    slot: Arc<PlanSlot>,
    /// Logical timestamp of the last hit or insertion.
    last_used: u64,
}

/// Signature-keyed LRU of compile-once plan slots.
pub struct PlanCache {
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    entries: HashMap<String, Entry>,
}

impl PlanCache {
    /// Empty cache holding at most `capacity` plans (0 disables caching —
    /// every probe hands out a detached slot, so every prepare compiles).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            entries: HashMap::new(),
        }
    }

    /// The slot for `signature`, plus whether it was already resident
    /// (`true` = hit). A miss reserves a fresh empty slot — evicting the
    /// least recently used entry when over capacity — which the caller
    /// fills via [`PlanSlot::get_or_compile`] outside the cache lock.
    pub fn probe(&mut self, signature: &str) -> (Arc<PlanSlot>, bool) {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(signature) {
            e.last_used = self.tick;
            self.hits += 1;
            return (Arc::clone(&e.slot), true);
        }
        self.misses += 1;
        let slot = Arc::new(PlanSlot::default());
        if self.capacity == 0 {
            // caching disabled: hand out a detached one-shot slot
            return (slot, false);
        }
        if self.entries.len() >= self.capacity {
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            signature.to_owned(),
            Entry {
                slot: Arc::clone(&slot),
                last_used: self.tick,
            },
        );
        (slot, false)
    }

    /// The resident slot for `signature`, if any. Unlike [`PlanCache::probe`]
    /// this never reserves a slot, never evicts, and touches no counters or
    /// LRU state — it is the read-only lookup sibling-plan derivation uses
    /// to consult a *parent* plan while filling a different signature's
    /// slot, without perturbing the cache's behavior under observation.
    pub fn peek(&self, signature: &str) -> Option<Arc<PlanSlot>> {
        self.entries.get(signature).map(|e| Arc::clone(&e.slot))
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(slot: &Arc<PlanSlot>) {
        slot.get_or_compile(|| CachedPlan {
            compiled: Arc::new(Compiled::default()),
            program: Arc::new(QueryProgram::default()),
            report: Arc::new(AnalysisReport::default()),
            seed_lists: OnceLock::new(),
        });
    }

    #[test]
    fn hit_miss_and_eviction_counters() {
        let mut c = PlanCache::new(2);
        let (a, hit) = c.probe("a");
        assert!(!hit);
        fill(&a);
        assert!(c.probe("a").1, "second probe hits");
        let (b, hit) = c.probe("b");
        assert!(!hit);
        fill(&b);
        // touch a so b is the LRU victim
        assert!(c.probe("a").1);
        let (_, hit) = c.probe("c");
        assert!(!hit);
        let s = c.stats();
        assert_eq!(s.len, 2);
        assert_eq!(s.evictions, 1);
        assert!(c.probe("a").1, "recently used entry survives");
        assert!(c.probe("c").1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (4, 3));
        // probing the evicted signature is a miss that re-reserves a
        // *fresh* slot (the old plan died with the eviction)
        let (b2, hit) = c.probe("b");
        assert!(!hit, "LRU entry was evicted");
        assert!(b2.get().is_none(), "fresh slot, nothing compiled yet");
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PlanCache::new(0);
        let (slot, hit) = c.probe("a");
        assert!(!hit);
        fill(&slot);
        assert!(!c.probe("a").1, "nothing is retained");
        assert_eq!(c.stats().len, 0);
    }

    #[test]
    fn slot_compiles_exactly_once() {
        let slot = Arc::new(PlanSlot::default());
        let mut compiles = 0;
        for _ in 0..3 {
            slot.get_or_compile(|| {
                compiles += 1;
                CachedPlan {
                    compiled: Arc::new(Compiled::default()),
                    program: Arc::new(QueryProgram::default()),
                    report: Arc::new(AnalysisReport::default()),
                    seed_lists: OnceLock::new(),
                }
            });
        }
        assert_eq!(compiles, 1);
        assert!(slot.get().is_some());
        assert!(PlanSlot::default().get().is_none());
    }
}
