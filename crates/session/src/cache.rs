//! The shared plan cache.
//!
//! Compiling a pattern query resolves every attribute name, edge type and
//! string constant against the graph's dictionaries and runs selectivity
//! estimation to order the search — work that is identical for every
//! execution of the same query over the same (immutable) database. The
//! why-query workloads repeat queries *heavily*: the relax loop and
//! TRAVERSESEARCHTREE execute hundreds of near-identical candidates, and a
//! service replays the same patterns verbatim across requests.
//!
//! `PlanCache` memoizes `(Compiled, plans)` pairs in an LRU keyed by the
//! canonical [`whyq_query::PatternQuery::signature`]. The signature
//! includes element ids, so only queries whose compiled slot layout is
//! byte-for-byte interchangeable share an entry — relabeled-but-isomorphic
//! queries deliberately get separate entries (a plan binds concrete
//! `QVid`/`QEid` slots). The cache is owned by the `Database` and shared
//! by every `Session`, so one session's compilation warms all of them.

use std::collections::HashMap;
use std::sync::Arc;
use whyq_matcher::compile::{Compiled, ComponentPlan};

/// A memoized compilation: the dictionary-resolved query plus its
/// per-component evaluation plans (empty when the query is unsatisfiable —
/// executing it answers without any scan).
#[derive(Debug)]
pub struct CachedPlan {
    /// The compiled (dictionary-resolved) query.
    pub compiled: Arc<Compiled>,
    /// Selectivity-ordered per-component plans; empty ⇔ unsatisfiable
    /// (or the query has no vertices).
    pub plans: Arc<Vec<ComponentPlan>>,
}

/// Cumulative cache counters (exposed via `Session::cache_stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Prepares answered from the cache.
    pub hits: u64,
    /// Prepares that had to compile and plan.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
}

struct Entry {
    plan: Arc<CachedPlan>,
    /// Logical timestamp of the last hit or insertion.
    last_used: u64,
}

/// Signature-keyed LRU of compiled plans.
pub struct PlanCache {
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    entries: HashMap<String, Entry>,
}

impl PlanCache {
    /// Empty cache holding at most `capacity` plans (0 disables caching —
    /// every prepare compiles).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            entries: HashMap::new(),
        }
    }

    /// Cached plan for `signature`, bumping its recency.
    pub fn get(&mut self, signature: &str) -> Option<Arc<CachedPlan>> {
        self.tick += 1;
        match self.entries.get_mut(signature) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&e.plan))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly compiled plan, evicting the least recently used
    /// entry when over capacity.
    pub fn insert(&mut self, signature: String, plan: Arc<CachedPlan>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&signature) {
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            signature,
            Entry {
                plan,
                last_used: self.tick,
            },
        );
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(sig: &str) -> Arc<CachedPlan> {
        let _ = sig;
        Arc::new(CachedPlan {
            compiled: Arc::new(Compiled::default()),
            plans: Arc::new(Vec::new()),
        })
    }

    #[test]
    fn hit_miss_and_eviction_counters() {
        let mut c = PlanCache::new(2);
        assert!(c.get("a").is_none());
        c.insert("a".into(), dummy("a"));
        assert!(c.get("a").is_some());
        c.insert("b".into(), dummy("b"));
        // touch a so b is the LRU victim
        assert!(c.get("a").is_some());
        c.insert("c".into(), dummy("c"));
        let s = c.stats();
        assert_eq!(s.len, 2);
        assert_eq!(s.evictions, 1);
        assert!(c.get("a").is_some(), "recently used entry survives");
        assert!(c.get("b").is_none(), "LRU entry evicted");
        assert!(c.get("c").is_some());
        let s = c.stats();
        assert_eq!(s.hits, 4);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PlanCache::new(0);
        c.insert("a".into(), dummy("a"));
        assert!(c.get("a").is_none());
        assert_eq!(c.stats().len, 0);
    }
}
