//! The sibling result cache: delta-driven reuse of per-component results
//! across relax-loop siblings.
//!
//! The relax loop (§6.3.1) and the MCS probes evaluate hundreds of
//! near-identical queries. The plan cache already removes the *compile*
//! share; this store removes the *execution* share that survives it:
//! every evaluated query's per-component outputs (counts, and — when
//! worth it — materialized rows) are memoized under the component's
//! canonical [`whyq_query::component_signature`]. A sibling derived by
//! removing an edge or vertex splits into components, most of which are
//! byte-identical to a component some earlier sibling already executed —
//! those units replay from here, and only the component the modification
//! touched re-runs. The merged answer goes through the same cartesian
//! combiner as a full execution, so the replayed result is exactly the
//! full-execution result (property-tested in `tests/sibling.rs`).
//!
//! ## Generation stamping
//!
//! In the style of Bevy ECS's tick-stamped change detection, every entry
//! is stamped with the store's `generation` at insert. `SiblingCache::clear`
//! bumps the generation in O(1) instead of walking the map: a later
//! lookup that finds an entry from an older generation treats it as
//! *invalidated* — it is dropped, counted in
//! [`SiblingStats::invalidations`], and recomputed. The graph itself is
//! immutable for the database's lifetime, so generations only move when a
//! caller explicitly clears (benchmarks, tests, future mutation support).
//!
//! ## What is — and is not — cached
//!
//! Only results computed to completion are inserted: a unit whose
//! [`whyq_matcher::Budget`] tripped mid-run produced a *partial* count or
//! row prefix, and caching it would replay a truncated answer as if it
//! were exact. Callers enforce this by checking the budget's termination
//! after computing each unit (see `PreparedQuery::count_governed`).
//! Replays themselves consume no budget — a governed run that reuses
//! cached units can therefore legitimately return *more* than an
//! identically-budgeted cold run; the governed contract (the value is a
//! lower bound of the exact answer unless tagged `Complete`) is
//! unaffected.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use whyq_matcher::ResultGraph;
use whyq_query::PatternQuery;

/// Bound on how many recently-prepared queries are remembered as
/// potential derivation parents (see `SiblingCache::register`).
const REGISTRY_CAPACITY: usize = 128;

/// Cache key for one component's memoized result. Everything that can
/// change the per-component output is part of the key:
/// the component's canonical signature (raw element ids — stable across
/// relax siblings), the injectivity mode, the per-component result cap,
/// and — for row entries only — the executing program's fingerprint
/// (derived sibling programs may enumerate rows in a different order
/// than a fresh compile; counts are order-independent).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CompKey {
    sig: String,
    injective: bool,
    limit: Option<usize>,
    /// `None` for count entries; `Some(program fingerprint)` for rows.
    fingerprint: Option<u64>,
}

#[derive(Debug, Clone)]
enum CompValue {
    Count(u64),
    Rows(Arc<Vec<ResultGraph>>),
}

#[derive(Debug)]
struct Entry {
    value: CompValue,
    /// Generation stamp at insert; a lookup from a later generation
    /// invalidates the entry.
    generation: u64,
    /// Logical timestamp of the last hit or insertion (LRU victim pick).
    last_used: u64,
}

/// A recently prepared satisfiable query, remembered as a candidate
/// parent for sibling-plan derivation.
#[derive(Debug, Clone)]
struct RegEntry {
    shape: u64,
    sig: String,
    query: Arc<PatternQuery>,
}

/// Point-in-time counters of the sibling cache (see
/// [`crate::Database::sibling_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiblingStats {
    /// Component results replayed from the cache instead of re-executed.
    pub hits: u64,
    /// Component units that had to (re-)execute while the rest of their
    /// query replayed — the units a sibling's delta invalidated — plus
    /// entries dropped by a generation bump.
    pub invalidations: u64,
    /// Complete component results inserted.
    pub insertions: u64,
    /// Entries evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Plans derived from a parent plan instead of compiled
    /// (single-interval siblings; see `whyq_matcher::derive_sibling`).
    pub derived_plans: u64,
    /// Entries currently resident (stale generations included until
    /// they are lazily dropped).
    pub len: usize,
    /// Configured capacity (0 = the sibling layer is disabled).
    pub capacity: usize,
}

/// Bounded, generation-stamped store of per-component results plus the
/// recent-query registry that seeds sibling-plan derivation. Owned by the
/// `Database` behind one mutex; all methods are O(1) amortized except
/// eviction's LRU scan.
#[derive(Debug)]
pub(crate) struct SiblingCache {
    capacity: usize,
    generation: u64,
    tick: u64,
    hits: u64,
    invalidations: u64,
    insertions: u64,
    evictions: u64,
    derived_plans: u64,
    entries: HashMap<CompKey, Entry>,
    registry: VecDeque<RegEntry>,
}

impl SiblingCache {
    pub(crate) fn new(capacity: usize) -> Self {
        SiblingCache {
            capacity,
            generation: 0,
            tick: 0,
            hits: 0,
            invalidations: 0,
            insertions: 0,
            evictions: 0,
            derived_plans: 0,
            entries: HashMap::new(),
            registry: VecDeque::new(),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Replay a memoized component count, if present and current.
    pub(crate) fn lookup_count(
        &mut self,
        sig: &str,
        injective: bool,
        limit: Option<usize>,
    ) -> Option<u64> {
        let key = CompKey {
            sig: sig.to_owned(),
            injective,
            limit,
            fingerprint: None,
        };
        match self.lookup(&key)? {
            CompValue::Count(c) => Some(c),
            CompValue::Rows(_) => None,
        }
    }

    /// Replay memoized component rows, if present, current, and produced
    /// by a program with the same fingerprint (row order is part of the
    /// contract).
    pub(crate) fn lookup_rows(
        &mut self,
        sig: &str,
        injective: bool,
        limit: Option<usize>,
        fingerprint: u64,
    ) -> Option<Arc<Vec<ResultGraph>>> {
        let key = CompKey {
            sig: sig.to_owned(),
            injective,
            limit,
            fingerprint: Some(fingerprint),
        };
        match self.lookup(&key)? {
            CompValue::Rows(rows) => Some(rows),
            CompValue::Count(_) => None,
        }
    }

    fn lookup(&mut self, key: &CompKey) -> Option<CompValue> {
        let entry = self.entries.get_mut(key)?;
        if entry.generation != self.generation {
            // stale generation: the entry predates a clear — drop it and
            // count the forced recomputation as an invalidation
            self.entries.remove(key);
            self.invalidations += 1;
            return None;
        }
        self.tick += 1;
        entry.last_used = self.tick;
        self.hits += 1;
        Some(entry.value.clone())
    }

    /// Memoize a *complete* component count. Callers must never insert a
    /// value computed under a tripped budget.
    pub(crate) fn insert_count(
        &mut self,
        sig: String,
        injective: bool,
        limit: Option<usize>,
        count: u64,
    ) {
        self.insert(
            CompKey {
                sig,
                injective,
                limit,
                fingerprint: None,
            },
            CompValue::Count(count),
        );
    }

    /// Memoize *complete* component rows under the producing program's
    /// fingerprint.
    pub(crate) fn insert_rows(
        &mut self,
        sig: String,
        injective: bool,
        limit: Option<usize>,
        fingerprint: u64,
        rows: Arc<Vec<ResultGraph>>,
    ) {
        self.insert(
            CompKey {
                sig,
                injective,
                limit,
                fingerprint: Some(fingerprint),
            },
            CompValue::Rows(rows),
        );
    }

    fn insert(&mut self, key: CompKey, value: CompValue) {
        if self.capacity == 0 {
            return;
        }
        while self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| (e.generation == self.generation, e.last_used))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                    self.evictions += 1;
                }
                None => break,
            }
        }
        self.tick += 1;
        self.insertions += 1;
        self.entries.insert(
            key,
            Entry {
                value,
                generation: self.generation,
                last_used: self.tick,
            },
        );
    }

    /// Count the cross-component bookkeeping of one incremental query:
    /// units that re-executed while at least one sibling unit replayed
    /// are exactly the units the query's delta invalidated.
    pub(crate) fn finish_query(&mut self, replayed: u64, recomputed: u64) {
        if replayed > 0 {
            self.invalidations += recomputed;
        }
    }

    /// Record a sibling-plan derivation (plan patched, not compiled).
    pub(crate) fn note_derived(&mut self) {
        self.derived_plans += 1;
    }

    /// Invalidate every memoized result in O(1) by bumping the
    /// generation; stale entries are dropped lazily on next touch.
    pub(crate) fn clear(&mut self) {
        self.generation += 1;
    }

    /// Remember `q` (already prepared, satisfiable) as a candidate parent
    /// for sibling-plan derivation, newest last. Re-registering a known
    /// signature refreshes its position.
    pub(crate) fn register(&mut self, shape: u64, sig: String, query: Arc<PatternQuery>) {
        if !self.enabled() {
            return;
        }
        if let Some(pos) = self.registry.iter().position(|e| e.sig == sig) {
            let e = self.registry.remove(pos).expect("position is valid");
            self.registry.push_back(e);
            return;
        }
        self.registry.push_back(RegEntry { shape, sig, query });
        while self.registry.len() > REGISTRY_CAPACITY {
            self.registry.pop_front();
        }
    }

    /// Recently registered queries with the given shape hash, newest
    /// first — the candidate parents a plan-cache miss tries to derive
    /// from.
    pub(crate) fn parents_for(&self, shape: u64) -> Vec<(String, Arc<PatternQuery>)> {
        self.registry
            .iter()
            .rev()
            .filter(|e| e.shape == shape)
            .map(|e| (e.sig.clone(), Arc::clone(&e.query)))
            .collect()
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> SiblingStats {
        SiblingStats {
            hits: self.hits,
            invalidations: self.invalidations,
            insertions: self.insertions,
            evictions: self.evictions,
            derived_plans: self.derived_plans,
            len: self.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_entries_round_trip_and_track_counters() {
        let mut c = SiblingCache::new(4);
        assert!(c.enabled());
        assert_eq!(c.lookup_count("a", true, None), None);
        c.insert_count("a".into(), true, None, 7);
        assert_eq!(c.lookup_count("a", true, None), Some(7));
        // every result-affecting dimension is part of the key
        assert_eq!(c.lookup_count("a", false, None), None);
        assert_eq!(c.lookup_count("a", true, Some(3)), None);
        let s = c.stats();
        assert_eq!((s.hits, s.insertions), (1, 1));
    }

    #[test]
    fn rows_require_matching_fingerprint() {
        let mut c = SiblingCache::new(4);
        c.insert_rows("a".into(), true, None, 42, Arc::new(Vec::new()));
        assert!(c.lookup_rows("a", true, None, 42).is_some());
        assert!(c.lookup_rows("a", true, None, 43).is_none());
        // count lookups never alias row entries
        assert_eq!(c.lookup_count("a", true, None), None);
    }

    #[test]
    fn clear_bumps_generation_and_counts_invalidations() {
        let mut c = SiblingCache::new(4);
        c.insert_count("a".into(), true, None, 7);
        c.clear();
        assert_eq!(c.lookup_count("a", true, None), None);
        assert_eq!(c.stats().invalidations, 1);
        // re-inserting under the new generation works
        c.insert_count("a".into(), true, None, 7);
        assert_eq!(c.lookup_count("a", true, None), Some(7));
    }

    #[test]
    fn capacity_bound_evicts_lru_and_zero_disables() {
        let mut c = SiblingCache::new(2);
        c.insert_count("a".into(), true, None, 1);
        c.insert_count("b".into(), true, None, 2);
        assert_eq!(c.lookup_count("a", true, None), Some(1)); // refresh a
        c.insert_count("c".into(), true, None, 3);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.lookup_count("b", true, None), None, "LRU victim");
        assert_eq!(c.lookup_count("a", true, None), Some(1));

        let mut off = SiblingCache::new(0);
        assert!(!off.enabled());
        off.insert_count("a".into(), true, None, 1);
        assert_eq!(off.lookup_count("a", true, None), None);
        assert_eq!(off.stats().len, 0);
    }

    #[test]
    fn registry_is_shape_filtered_newest_first_and_bounded() {
        let mut c = SiblingCache::new(4);
        let q = Arc::new(PatternQuery::new());
        c.register(1, "s1".into(), Arc::clone(&q));
        c.register(2, "s2".into(), Arc::clone(&q));
        c.register(1, "s3".into(), Arc::clone(&q));
        let parents: Vec<String> = c.parents_for(1).into_iter().map(|(s, _)| s).collect();
        assert_eq!(parents, ["s3", "s1"]);
        // re-registering refreshes, not duplicates
        c.register(1, "s1".into(), Arc::clone(&q));
        let parents: Vec<String> = c.parents_for(1).into_iter().map(|(s, _)| s).collect();
        assert_eq!(parents, ["s1", "s3"]);
        for i in 0..(REGISTRY_CAPACITY + 10) {
            c.register(9, format!("x{i}"), Arc::clone(&q));
        }
        assert!(c.parents_for(9).len() <= REGISTRY_CAPACITY);
    }

    #[test]
    fn partial_reuse_counts_invalidations() {
        let mut c = SiblingCache::new(8);
        c.finish_query(0, 3); // cold query: misses are not invalidations
        assert_eq!(c.stats().invalidations, 0);
        c.finish_query(2, 1); // one unit re-ran while two replayed
        assert_eq!(c.stats().invalidations, 1);
    }
}
