//! The error surface of the facade.
//!
//! Every facade entry point returns `Result<_, WhyqError>` — misuse that
//! the borrow-heavy pre-facade API answered with a panic (or silently
//! wrong behavior, like an index configured on an attribute no element
//! carries) is a value here.

use std::fmt;

/// Errors raised by the `Database`/`Session`/`PreparedQuery` facade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WhyqError {
    /// A configured index attribute occurs nowhere in the graph (raised by
    /// strict configurations — see `DatabaseConfig::strict`).
    UnknownIndexAttribute {
        /// The attribute name that matched no element.
        attr: String,
    },
    /// The query violates a structural invariant and can never execute
    /// meaningfully (e.g. an edge whose direction set is empty).
    InvalidQuery {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
}

impl fmt::Display for WhyqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhyqError::UnknownIndexAttribute { attr } => {
                write!(
                    f,
                    "index attribute {attr:?} occurs on no vertex of the graph"
                )
            }
            WhyqError::InvalidQuery { reason } => write!(f, "invalid query: {reason}"),
        }
    }
}

impl std::error::Error for WhyqError {}
