//! The error surface of the facade.
//!
//! Every facade entry point returns `Result<_, WhyqError>` — misuse that
//! the borrow-heavy pre-facade API answered with a panic (or silently
//! wrong behavior, like an index configured on an attribute no element
//! carries) is a value here.

use std::fmt;
use whyq_matcher::Termination;

/// Errors raised by the `Database`/`Session`/`PreparedQuery` facade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WhyqError {
    /// A configured index attribute occurs nowhere in the graph (raised by
    /// strict configurations — see `DatabaseConfig::strict`).
    UnknownIndexAttribute {
        /// The attribute name that matched no element.
        attr: String,
    },
    /// The query violates a structural invariant and can never execute
    /// meaningfully (e.g. an edge whose direction set is empty).
    InvalidQuery {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// Execution stopped before completing because its
    /// [`whyq_matcher::Budget`] tripped: the deadline passed, the step
    /// budget ran out, or an external [`whyq_matcher::CancelToken`] was
    /// flipped. Raised by the plain `find`/`count` entry points, whose
    /// contract is an *exact* answer — callers that want the partial
    /// results of an interrupted run use the `*_governed` variants, which
    /// return them tagged with the [`Termination`] instead of erroring.
    Interrupted {
        /// Why the budget tripped (never [`Termination::Complete`]).
        termination: Termination,
    },
    /// A worker thread panicked while executing a parallel work unit. The
    /// executor catches the unwind at the unit boundary, so the
    /// [`crate::Database`] — its graph, indexes and plan cache — and every
    /// other session remain fully usable; only the batch that hosted the
    /// panic fails.
    WorkerPanicked {
        /// The panic payload, when it was a string (the common
        /// `panic!`/`assert!` case), else a placeholder.
        message: String,
    },
}

impl fmt::Display for WhyqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhyqError::UnknownIndexAttribute { attr } => {
                write!(
                    f,
                    "index attribute {attr:?} occurs on no vertex of the graph"
                )
            }
            WhyqError::InvalidQuery { reason } => write!(f, "invalid query: {reason}"),
            WhyqError::Interrupted { termination } => {
                write!(f, "execution interrupted: {termination}")
            }
            WhyqError::WorkerPanicked { message } => {
                write!(f, "a parallel worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for WhyqError {}
