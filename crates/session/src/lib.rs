//! # whyq-session — the `Database` → `Session` → `PreparedQuery` facade
//!
//! The public face of the workspace's query engine. It packages the raw
//! matching machinery of `whyq-matcher` into the contract a real graph
//! database exposes (prepared statements and lazy result enumeration are
//! the baseline of every modern graph query API — see Angles et al.,
//! *Foundations of Modern Query Languages for Graph Databases*):
//!
//! * [`Database::open`] **takes ownership** of a [`PropertyGraph`], seals
//!   its CSR topology once and builds the *configured* attribute indexes
//!   ([`DatabaseConfig`] — no more hard-coded `"type"` index buried in an
//!   engine constructor). Opening validates the configuration; every
//!   facade entry point returns `Result<_, `[`WhyqError`]`>` instead of
//!   panicking.
//! * [`Database::session`] hands out cheap [`Session`] handles. Each
//!   session owns its scratch arena (the per-worker state that makes
//!   parallel evaluation possible) while sharing the database's immutable
//!   graph, indexes and plan cache.
//! * [`Session::prepare`] compiles a query **once** and memoizes the
//!   compilation + evaluation plans in a shared LRU keyed by the canonical
//!   [`PatternQuery::signature`] — repeat queries (the relax loop's
//!   hundreds of siblings, a service's verbatim replays) skip name
//!   resolution, selectivity estimation and planning entirely.
//! * [`PreparedQuery::find`], [`PreparedQuery::count`] and the lazy
//!   [`PreparedQuery::stream`] execute the cached plan; `stream` yields
//!   [`ResultGraph`]s straight from the suspendable backtracking DFS
//!   without materializing the result set.
//!
//! ```
//! use whyq_graph::{PropertyGraph, Value};
//! use whyq_query::{Predicate, QueryBuilder};
//! use whyq_session::Database;
//!
//! let mut g = PropertyGraph::new();
//! let anna = g.add_vertex([("type", Value::str("person"))]);
//! let tud = g.add_vertex([("type", Value::str("university"))]);
//! g.add_edge(anna, tud, "workAt", []);
//!
//! let db = Database::open(g)?;
//! let session = db.session();
//! let q = QueryBuilder::new("who-works")
//!     .vertex("p", [Predicate::eq("type", "person")])
//!     .vertex("u", [Predicate::eq("type", "university")])
//!     .edge("p", "u", "workAt")
//!     .build();
//!
//! let prepared = session.prepare(&q)?;
//! assert_eq!(prepared.count()?, 1);
//! for result in prepared.stream() {
//!     assert_eq!(result.vertex(whyq_query::QVid(0)), Some(anna));
//! }
//! // a second prepare of the same query is a cache hit
//! let again = session.prepare(&q)?;
//! assert_eq!(again.count()?, 1);
//! assert!(session.cache_stats().hits >= 1);
//! # Ok::<(), whyq_session::WhyqError>(())
//! ```

pub mod cache;
pub mod error;

pub use cache::{CacheStats, PlanCache};
pub use error::WhyqError;

use cache::CachedPlan;
use std::sync::{Arc, Mutex};
use whyq_graph::PropertyGraph;
use whyq_matcher::{AttrIndex, MatchOptions, MatchStream, Matcher, ResultGraph};
use whyq_query::PatternQuery;

/// Configuration applied when opening a [`Database`].
#[derive(Debug, Clone)]
pub struct DatabaseConfig {
    /// Vertex attributes to build equality indexes over. Defaults to
    /// `["type"]` — the attribute the thesis workloads pin on nearly every
    /// query vertex.
    pub index_attrs: Vec<String>,
    /// When `true`, [`Database::open_with`] fails with
    /// [`WhyqError::UnknownIndexAttribute`] if a configured attribute
    /// occurs nowhere in the graph; when `false` (default), such
    /// attributes are skipped — matching the historical behavior of
    /// building an index lazily and finding nothing to index.
    pub strict_indexes: bool,
    /// Capacity of the shared plan cache (entries). `0` disables caching.
    pub plan_cache_capacity: usize,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            index_attrs: vec!["type".to_string()],
            strict_indexes: false,
            plan_cache_capacity: 256,
        }
    }
}

impl DatabaseConfig {
    /// Default configuration (a lenient `"type"` index, 256-entry plan
    /// cache).
    pub fn new() -> Self {
        Self::default()
    }

    /// Configuration with exactly the given index attributes.
    pub fn with_indexes<I, S>(attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        DatabaseConfig {
            index_attrs: attrs.into_iter().map(Into::into).collect(),
            ..Self::default()
        }
    }

    /// Configuration with no indexes at all.
    pub fn unindexed() -> Self {
        DatabaseConfig {
            index_attrs: Vec::new(),
            ..Self::default()
        }
    }

    /// Add one index attribute (builder style).
    pub fn index(mut self, attr: impl Into<String>) -> Self {
        self.index_attrs.push(attr.into());
        self
    }

    /// Require every configured index attribute to occur in the graph.
    pub fn strict(mut self) -> Self {
        self.strict_indexes = true;
        self
    }

    /// Override the plan cache capacity.
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan_cache_capacity = capacity;
        self
    }
}

/// An immutable, sealed property graph plus everything derived from it:
/// configured attribute indexes and the shared plan cache.
///
/// A `Database` owns its graph. Sealing happens once at open — every
/// session reads the same compact CSR topology — and because the graph can
/// no longer change, compiled plans and index buckets stay valid for the
/// database's whole lifetime. Reopening (dropping the database and calling
/// [`Database::open`] on a graph again) naturally starts from an empty
/// cache: plans never outlive the graph they were compiled against.
pub struct Database {
    g: PropertyGraph,
    config: DatabaseConfig,
    indexes: Vec<Arc<AttrIndex>>,
    /// Names of the attributes an index was actually built for (strict
    /// mode makes this equal to `config.index_attrs`).
    built_attrs: Vec<String>,
    cache: Mutex<PlanCache>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("vertices", &self.g.num_vertices())
            .field("edges", &self.g.num_edges())
            .field("index_attrs", &self.built_attrs)
            .field("cache", &self.cache_stats())
            .finish()
    }
}

impl Database {
    /// Open a database over `graph` with the default configuration.
    pub fn open(graph: PropertyGraph) -> Result<Database, WhyqError> {
        Self::open_with(graph, DatabaseConfig::default())
    }

    /// Open a database over `graph`, sealing its topology and building the
    /// configured indexes. With `config.strict_indexes`, an index attribute
    /// that occurs nowhere in the graph is an error; otherwise it is
    /// skipped.
    pub fn open_with(
        mut graph: PropertyGraph,
        config: DatabaseConfig,
    ) -> Result<Database, WhyqError> {
        graph.seal();
        let mut indexes = Vec::new();
        let mut built_attrs = Vec::new();
        for attr in &config.index_attrs {
            match AttrIndex::build(&graph, attr) {
                Some(idx) => {
                    indexes.push(Arc::new(idx));
                    built_attrs.push(attr.clone());
                }
                None if config.strict_indexes => {
                    return Err(WhyqError::UnknownIndexAttribute { attr: attr.clone() });
                }
                None => {}
            }
        }
        let cache = Mutex::new(PlanCache::new(config.plan_cache_capacity));
        Ok(Database {
            g: graph,
            config,
            indexes,
            built_attrs,
            cache,
        })
    }

    /// The owned (sealed) graph.
    pub fn graph(&self) -> &PropertyGraph {
        &self.g
    }

    /// The configuration the database was opened with.
    pub fn config(&self) -> &DatabaseConfig {
        &self.config
    }

    /// The attribute indexes built at open (shared with every session).
    pub fn indexes(&self) -> &[Arc<AttrIndex>] {
        &self.indexes
    }

    /// Names of the attributes an index was actually built over.
    pub fn index_attrs(&self) -> &[String] {
        &self.built_attrs
    }

    /// A new session: a cheap handle owning its own scratch arena and
    /// sharing the database's graph, indexes and plan cache.
    pub fn session(&self) -> Session<'_> {
        Session {
            db: self,
            matcher: Matcher::with_shared_indexes(&self.g, self.indexes.clone()),
        }
    }

    /// Counters of the shared plan cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("plan cache poisoned").stats()
    }

    /// Close the database, handing the graph back (e.g. to mutate and
    /// reopen). All plans ever cached die with the database.
    pub fn close(self) -> PropertyGraph {
        self.g
    }

    /// Look up or build the cached plan for `q`. The cache lock is held
    /// only for the probe and the insert — compilation (which samples the
    /// graph for selectivity estimates) runs outside it, so concurrent
    /// sessions never serialize on each other's compiles. Two sessions
    /// racing on the same uncached signature may both compile; the second
    /// insert wins, which is harmless (both plans are equivalent).
    fn plan_for(&self, session: &Session<'_>, q: &PatternQuery) -> Arc<CachedPlan> {
        let sig = q.signature();
        if let Some(plan) = self.cache.lock().expect("plan cache poisoned").get(&sig) {
            return plan;
        }
        let (compiled, plans) = session.matcher.compile(q);
        let plan = Arc::new(CachedPlan {
            compiled: Arc::new(compiled),
            plans: Arc::new(plans),
        });
        self.cache
            .lock()
            .expect("plan cache poisoned")
            .insert(sig, Arc::clone(&plan));
        plan
    }
}

/// Structural validation applied at prepare time — the panics the
/// pre-facade API reserved for misuse become [`WhyqError::InvalidQuery`].
fn validate(q: &PatternQuery) -> Result<(), WhyqError> {
    for e in q.edge_ids() {
        let ed = q.edge(e).expect("live");
        if ed.directions.is_empty() {
            return Err(WhyqError::InvalidQuery {
                reason: format!("query edge {e} admits no direction"),
            });
        }
        if q.vertex(ed.src).is_none() || q.vertex(ed.dst).is_none() {
            return Err(WhyqError::InvalidQuery {
                reason: format!("query edge {e} references a removed vertex"),
            });
        }
    }
    Ok(())
}

/// A lightweight execution handle: shares the database's graph, indexes
/// and plan cache, owns its scratch arena.
///
/// Sessions are cheap to create and independent — each one can run
/// searches (and hold suspended [`MatchStream`]s) without contending with
/// any other session's scratch state. This is the per-worker unit for
/// parallel evaluation: hand one session to each thread.
#[derive(Debug)]
pub struct Session<'db> {
    db: &'db Database,
    matcher: Matcher<'db>,
}

impl<'db> Session<'db> {
    /// The database this session belongs to.
    pub fn database(&self) -> &'db Database {
        self.db
    }

    /// The session's graph (the database's).
    pub fn graph(&self) -> &'db PropertyGraph {
        self.db.graph()
    }

    /// Prepare `q`: validate it, then fetch its compilation and plans from
    /// the shared cache (compiling at most once per distinct signature).
    pub fn prepare(&self, q: &PatternQuery) -> Result<PreparedQuery<'_, 'db>, WhyqError> {
        validate(q)?;
        let plan = self.db.plan_for(self, q);
        Ok(PreparedQuery {
            session: self,
            // the caller's own query, not the cache entry's: signatures
            // exclude display-only fields (the query name), so an
            // equal-signature cache hit must still report the identity it
            // was prepared with. Execution is signature-determined, so
            // running the caller's clone against the cached plan is exact.
            query: Arc::new(q.clone()),
            plan,
        })
    }

    /// Prepare and enumerate all result graphs of `q`.
    pub fn find(&self, q: &PatternQuery) -> Result<Vec<ResultGraph>, WhyqError> {
        self.find_opts(q, MatchOptions::default())
    }

    /// Prepare and enumerate result graphs of `q` under `opts`.
    pub fn find_opts(
        &self,
        q: &PatternQuery,
        opts: MatchOptions,
    ) -> Result<Vec<ResultGraph>, WhyqError> {
        self.prepare(q)?.find_opts(opts)
    }

    /// Prepare and count the result graphs of `q` (injective, no cap).
    pub fn count(&self, q: &PatternQuery) -> Result<u64, WhyqError> {
        self.count_opts(q, MatchOptions::default())
    }

    /// Prepare and count the result graphs of `q` under `opts`.
    pub fn count_opts(&self, q: &PatternQuery, opts: MatchOptions) -> Result<u64, WhyqError> {
        self.prepare(q)?.count_opts(opts)
    }

    /// Counters of the shared plan cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.db.cache_stats()
    }
}

/// A compiled, planned, cache-resident query bound to a session.
///
/// Executing a prepared query runs the cached plan directly: no name
/// resolution, no selectivity estimation, no planning. All execution
/// methods may be called any number of times.
#[derive(Debug)]
pub struct PreparedQuery<'s, 'db> {
    session: &'s Session<'db>,
    query: Arc<PatternQuery>,
    plan: Arc<CachedPlan>,
}

impl<'db> PreparedQuery<'_, 'db> {
    /// The query this handle was prepared with.
    pub fn query(&self) -> &PatternQuery {
        &self.query
    }

    /// The canonical signature the plan is cached under.
    pub fn signature(&self) -> String {
        self.query.signature()
    }

    /// True when compilation proved the query can match nothing in this
    /// database (unknown attribute/type, a string constant the value
    /// dictionary has never seen, an empty interval).
    pub fn is_unsatisfiable(&self) -> bool {
        self.plan.plans.is_empty() && self.query.num_vertices() > 0
    }

    /// Enumerate all result graphs (injective).
    pub fn find(&self) -> Result<Vec<ResultGraph>, WhyqError> {
        self.find_opts(MatchOptions::default())
    }

    /// Enumerate result graphs under `opts`. Execution of a prepared plan
    /// cannot currently fail — the `Result` is the facade's uniform error
    /// surface, leaving room for execution-time errors (budgets,
    /// cancellation) without a breaking change.
    pub fn find_opts(&self, opts: MatchOptions) -> Result<Vec<ResultGraph>, WhyqError> {
        Ok(self.session.matcher.find_compiled(
            &self.query,
            &self.plan.compiled,
            &self.plan.plans,
            opts,
        ))
    }

    /// Count result graphs (injective, exact).
    pub fn count(&self) -> Result<u64, WhyqError> {
        self.count_opts(MatchOptions::default())
    }

    /// Count result graphs under `opts`, stopping early at `opts.limit` —
    /// same uniform `Result` surface as [`PreparedQuery::find_opts`].
    pub fn count_opts(&self, opts: MatchOptions) -> Result<u64, WhyqError> {
        Ok(self.session.matcher.count_compiled(
            &self.query,
            &self.plan.compiled,
            &self.plan.plans,
            opts,
        ))
    }

    /// Stream result graphs lazily (injective, unlimited): the backtracking
    /// DFS suspends after every yielded match, so consuming `k` results
    /// costs `O(k)` search work regardless of the full result size.
    pub fn stream(&self) -> MatchStream<'db> {
        self.stream_opts(MatchOptions::default())
    }

    /// Stream result graphs lazily under `opts`. The stream owns its own
    /// search state — it stays valid after the prepared query or session
    /// it came from is dropped, and any number of streams may be in flight
    /// at once.
    pub fn stream_opts(&self, opts: MatchOptions) -> MatchStream<'db> {
        MatchStream::over(
            self.session.db.graph(),
            self.session.db.indexes().to_vec(),
            Arc::clone(&self.query),
            Arc::clone(&self.plan.compiled),
            Arc::clone(&self.plan.plans),
            opts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::Value;
    use whyq_query::{Predicate, QueryBuilder};

    fn social() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([("type", Value::str("person"))]);
        let city = g.add_vertex([("type", Value::str("city"))]);
        g.add_edge(a, b, "knows", []);
        g.add_edge(a, city, "livesIn", []);
        g.add_edge(b, city, "livesIn", []);
        g
    }

    fn pair_query() -> PatternQuery {
        QueryBuilder::new("pair")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .edge("p1", "p2", "knows")
            .build()
    }

    #[test]
    fn open_builds_configured_indexes() {
        let db = Database::open(social()).unwrap();
        assert_eq!(db.index_attrs(), ["type".to_string()]);
        assert_eq!(db.indexes().len(), 1);
        let none = Database::open_with(social(), DatabaseConfig::unindexed()).unwrap();
        assert!(none.indexes().is_empty());
    }

    #[test]
    fn strict_config_rejects_unknown_attrs() {
        let err = Database::open_with(
            social(),
            DatabaseConfig::with_indexes(["nonexistent"]).strict(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            WhyqError::UnknownIndexAttribute {
                attr: "nonexistent".into()
            }
        );
        // lenient mode skips it
        let db =
            Database::open_with(social(), DatabaseConfig::with_indexes(["nonexistent"])).unwrap();
        assert!(db.indexes().is_empty());
    }

    #[test]
    fn prepare_executes_and_caches() {
        let db = Database::open(social()).unwrap();
        let session = db.session();
        let q = pair_query();
        let prepared = session.prepare(&q).unwrap();
        assert_eq!(prepared.count().unwrap(), 1);
        assert_eq!(prepared.find().unwrap().len(), 1);
        assert_eq!(prepared.stream().count(), 1);
        let before = session.cache_stats();
        let again = session.prepare(&q).unwrap();
        assert_eq!(again.count().unwrap(), 1);
        let after = session.cache_stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn sessions_share_the_plan_cache() {
        let db = Database::open(social()).unwrap();
        let q = pair_query();
        let s1 = db.session();
        s1.prepare(&q).unwrap();
        let s2 = db.session();
        s2.prepare(&q).unwrap();
        let stats = db.cache_stats();
        assert_eq!(stats.misses, 1, "second session reuses the first's plan");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn invalid_query_is_an_error_not_a_panic() {
        let db = Database::open(social()).unwrap();
        let session = db.session();
        let mut q = pair_query();
        q.edge_mut(whyq_query::QEid(0))
            .unwrap()
            .directions
            .remove(whyq_query::Direction::Forward);
        let err = session.prepare(&q).unwrap_err();
        assert!(matches!(err, WhyqError::InvalidQuery { .. }));
    }

    #[test]
    fn unsatisfiable_queries_answer_without_scanning() {
        let db = Database::open(social()).unwrap();
        let session = db.session();
        let q = QueryBuilder::new("robot")
            .vertex("r", [Predicate::eq("type", "robot")])
            .build();
        let prepared = session.prepare(&q).unwrap();
        assert!(prepared.is_unsatisfiable());
        assert_eq!(prepared.count().unwrap(), 0);
        assert!(prepared.find().unwrap().is_empty());
        assert_eq!(prepared.stream().count(), 0);
    }

    #[test]
    fn stream_outlives_session_and_prepared() {
        let db = Database::open(social()).unwrap();
        let stream = {
            let session = db.session();
            let prepared = session.prepare(&pair_query()).unwrap();
            prepared.stream()
        };
        assert_eq!(stream.count(), 1);
    }

    #[test]
    fn close_returns_the_graph() {
        let db = Database::open(social()).unwrap();
        let g = db.close();
        assert_eq!(g.num_vertices(), 3);
    }
}
