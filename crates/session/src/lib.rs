//! # whyq-session — the `Database` → `Session` → `PreparedQuery` facade
//!
//! The public face of the workspace's query engine. It packages the raw
//! matching machinery of `whyq-matcher` into the contract a real graph
//! database exposes (prepared statements and lazy result enumeration are
//! the baseline of every modern graph query API — see Angles et al.,
//! *Foundations of Modern Query Languages for Graph Databases*):
//!
//! * [`Database::open`] **takes ownership** of a [`PropertyGraph`], seals
//!   its CSR topology once and builds the *configured* attribute indexes
//!   ([`DatabaseConfig`] — no more hard-coded `"type"` index buried in an
//!   engine constructor). Opening validates the configuration; every
//!   facade entry point returns `Result<_, `[`WhyqError`]`>` instead of
//!   panicking.
//! * [`Database::session`] hands out cheap [`Session`] handles. Each
//!   session owns its scratch arena (the per-worker state that makes
//!   parallel evaluation possible) while sharing the database's immutable
//!   graph, indexes and plan cache.
//! * [`Session::prepare`] runs the `parse → validate → analyze → compile`
//!   pipeline **once** per distinct signature and memoizes the result in a
//!   shared LRU keyed by the canonical [`PatternQuery::signature`] —
//!   repeat queries (the relax loop's hundreds of siblings, a service's
//!   verbatim replays) skip analysis, name resolution, selectivity
//!   estimation and planning entirely. The static-analysis stage
//!   ([`mod@whyq_query::analyze`]) merges and canonicalizes predicates and
//!   proves unsatisfiability where possible: a provably-empty query is
//!   never compiled at all — [`PreparedQuery::find`] answers with zero
//!   candidate scans and [`PreparedQuery::report`] carries the typed
//!   [`Diagnostic`]s naming the conflicting predicates.
//! * [`PreparedQuery::find`], [`PreparedQuery::count`] and the lazy
//!   [`PreparedQuery::stream`] execute the cached plan; `stream` yields
//!   [`ResultGraph`]s straight from the suspendable backtracking DFS
//!   without materializing the result set.
//!
//! ```
//! use whyq_graph::{PropertyGraph, Value};
//! use whyq_query::{Predicate, QueryBuilder};
//! use whyq_session::Database;
//!
//! let mut g = PropertyGraph::new();
//! let anna = g.add_vertex([("type", Value::str("person"))]);
//! let tud = g.add_vertex([("type", Value::str("university"))]);
//! g.add_edge(anna, tud, "workAt", []);
//!
//! let db = Database::open(g)?;
//! let session = db.session();
//! let q = QueryBuilder::new("who-works")
//!     .vertex("p", [Predicate::eq("type", "person")])
//!     .vertex("u", [Predicate::eq("type", "university")])
//!     .edge("p", "u", "workAt")
//!     .build();
//!
//! let prepared = session.prepare(&q)?;
//! assert_eq!(prepared.count()?, 1);
//! for result in prepared.stream() {
//!     assert_eq!(result.vertex(whyq_query::QVid(0)), Some(anna));
//! }
//! // a second prepare of the same query is a cache hit
//! let again = session.prepare(&q)?;
//! assert_eq!(again.count()?, 1);
//! assert!(session.cache_stats().hits >= 1);
//! # Ok::<(), whyq_session::WhyqError>(())
//! ```

// The whole workspace is unsafe-free (audited 2026-08): lock it in.
#![forbid(unsafe_code)]
// Every public item documents itself; CI's docs lane denies this warning.
#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod executor;
pub mod sibling;

pub use cache::{CacheStats, PlanCache};
pub use error::WhyqError;
pub use executor::{Executor, ParallelOpts, DEFAULT_MIN_SEEDS_PER_SPLIT};
pub use sibling::SiblingStats;

use cache::CachedPlan;
use sibling::SiblingCache;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use whyq_graph::PropertyGraph;
use whyq_matcher::{
    combine_components, split_ranges, AttrIndex, MatchOptions, MatchStream, Matcher, ResultGraph,
    SeedList, WorkUnit,
};
pub use whyq_matcher::{Budget, CancelToken, Termination};
use whyq_query::{
    analyze_against, component_signature, shape_hash, DeltaKind, PatternQuery, QueryDelta,
};
pub use whyq_query::{AnalysisReport, Diagnostic, DiagnosticCode, Severity};

/// A result produced under a [`Budget`], tagged with how the execution
/// ended. Returned by the `*_governed` entry points: when `termination`
/// is not [`Termination::Complete`], `value` holds the partial results
/// accumulated before the budget tripped — a prefix-consistent subset of
/// the ungoverned answer, still useful for best-effort serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Governed<T> {
    /// The (possibly partial) result.
    pub value: T,
    /// [`Termination::Complete`] iff `value` is the full answer.
    pub termination: Termination,
}

impl<T> Governed<T> {
    /// True iff the run finished and `value` is exact.
    pub fn is_complete(&self) -> bool {
        self.termination.is_complete()
    }
}

// `Executor` workers share one `&Database` across scoped threads; this
// trips at compile time if a future field ever breaks that contract.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
};

/// Configuration applied when opening a [`Database`].
#[derive(Debug, Clone)]
pub struct DatabaseConfig {
    /// Vertex attributes to build equality indexes over. Defaults to
    /// `["type"]` — the attribute the thesis workloads pin on nearly every
    /// query vertex.
    pub index_attrs: Vec<String>,
    /// When `true`, [`Database::open_with`] fails with
    /// [`WhyqError::UnknownIndexAttribute`] if a configured attribute
    /// occurs nowhere in the graph; when `false` (default), such
    /// attributes are skipped — matching the historical behavior of
    /// building an index lazily and finding nothing to index.
    pub strict_indexes: bool,
    /// Capacity of the shared plan cache (entries). `0` disables caching.
    pub plan_cache_capacity: usize,
    /// Capacity (entries) of the sibling result cache that replays
    /// per-component results across relax-loop siblings, and gate for
    /// sibling-plan derivation. `0` disables the whole sibling layer.
    /// The `WHYQ_NO_SIBLING_CACHE` environment variable (any non-empty
    /// value other than `0`, read at [`Database::open_with`]) force-
    /// disables it regardless of this setting — CI uses it to keep the
    /// non-incremental paths green.
    pub sibling_cache_capacity: usize,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            index_attrs: vec!["type".to_string()],
            strict_indexes: false,
            plan_cache_capacity: 256,
            sibling_cache_capacity: 1024,
        }
    }
}

impl DatabaseConfig {
    /// Default configuration (a lenient `"type"` index, 256-entry plan
    /// cache).
    pub fn new() -> Self {
        Self::default()
    }

    /// Configuration with exactly the given index attributes.
    pub fn with_indexes<I, S>(attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        DatabaseConfig {
            index_attrs: attrs.into_iter().map(Into::into).collect(),
            ..Self::default()
        }
    }

    /// Configuration with no indexes at all.
    pub fn unindexed() -> Self {
        DatabaseConfig {
            index_attrs: Vec::new(),
            ..Self::default()
        }
    }

    /// Add one index attribute (builder style).
    pub fn index(mut self, attr: impl Into<String>) -> Self {
        self.index_attrs.push(attr.into());
        self
    }

    /// Require every configured index attribute to occur in the graph.
    pub fn strict(mut self) -> Self {
        self.strict_indexes = true;
        self
    }

    /// Override the plan cache capacity.
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan_cache_capacity = capacity;
        self
    }

    /// Override the sibling result cache capacity (`0` disables the
    /// sibling layer: no result replay, no plan derivation).
    pub fn sibling_cache_capacity(mut self, capacity: usize) -> Self {
        self.sibling_cache_capacity = capacity;
        self
    }
}

/// An immutable, sealed property graph plus everything derived from it:
/// configured attribute indexes and the shared plan cache.
///
/// A `Database` owns its graph. Sealing happens once at open — every
/// session reads the same compact CSR topology — and because the graph can
/// no longer change, compiled plans and index buckets stay valid for the
/// database's whole lifetime. Reopening (dropping the database and calling
/// [`Database::open`] on a graph again) naturally starts from an empty
/// cache: plans never outlive the graph they were compiled against.
pub struct Database {
    g: PropertyGraph,
    config: DatabaseConfig,
    indexes: Vec<Arc<AttrIndex>>,
    /// Names of the attributes an index was actually built for (strict
    /// mode makes this equal to `config.index_attrs`).
    built_attrs: Vec<String>,
    cache: Mutex<PlanCache>,
    /// The sibling result cache + derivation-parent registry (see
    /// [`mod@sibling`]). Disabled (capacity 0) it costs one branch per
    /// execution.
    siblings: Mutex<SiblingCache>,
    /// Number of plan compilations actually performed — under contention
    /// this stays equal to the number of distinct uncached signatures
    /// prepared (the compile-once guarantee of [`cache::PlanSlot`]).
    /// Plans *derived* from a parent plan (single-interval siblings) do
    /// not count: derivation is the point of not compiling.
    compiles: AtomicU64,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("vertices", &self.g.num_vertices())
            .field("edges", &self.g.num_edges())
            .field("index_attrs", &self.built_attrs)
            .field("cache", &self.cache_stats())
            .finish()
    }
}

impl Database {
    /// Open a database over `graph` with the default configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use whyq_graph::{PropertyGraph, Value};
    /// use whyq_session::Database;
    ///
    /// let mut g = PropertyGraph::new();
    /// g.add_vertex([("type", Value::str("person"))]);
    /// let db = Database::open(g)?; // seals the topology, builds indexes
    /// assert_eq!(db.graph().num_vertices(), 1);
    /// # Ok::<(), whyq_session::WhyqError>(())
    /// ```
    pub fn open(graph: PropertyGraph) -> Result<Database, WhyqError> {
        Self::open_with(graph, DatabaseConfig::default())
    }

    /// Open a database over `graph`, sealing its topology and building the
    /// configured indexes. With `config.strict_indexes`, an index attribute
    /// that occurs nowhere in the graph is an error; otherwise it is
    /// skipped.
    pub fn open_with(
        mut graph: PropertyGraph,
        config: DatabaseConfig,
    ) -> Result<Database, WhyqError> {
        graph.seal();
        let mut indexes = Vec::new();
        let mut built_attrs = Vec::new();
        for attr in &config.index_attrs {
            match AttrIndex::build(&graph, attr) {
                Some(idx) => {
                    indexes.push(Arc::new(idx));
                    built_attrs.push(attr.clone());
                }
                None if config.strict_indexes => {
                    return Err(WhyqError::UnknownIndexAttribute { attr: attr.clone() });
                }
                None => {}
            }
        }
        let cache = Mutex::new(PlanCache::new(config.plan_cache_capacity));
        // CI and benchmarks force-disable the sibling layer to exercise
        // the plain execution paths: any non-empty value but "0" wins
        // over the configured capacity.
        let env_disabled =
            std::env::var("WHYQ_NO_SIBLING_CACHE").is_ok_and(|v| !v.is_empty() && v != "0");
        let sibling_capacity = if env_disabled {
            0
        } else {
            config.sibling_cache_capacity
        };
        let siblings = Mutex::new(SiblingCache::new(sibling_capacity));
        Ok(Database {
            g: graph,
            config,
            indexes,
            built_attrs,
            cache,
            siblings,
            compiles: AtomicU64::new(0),
        })
    }

    /// The owned (sealed) graph.
    pub fn graph(&self) -> &PropertyGraph {
        &self.g
    }

    /// The configuration the database was opened with.
    pub fn config(&self) -> &DatabaseConfig {
        &self.config
    }

    /// The attribute indexes built at open (shared with every session).
    pub fn indexes(&self) -> &[Arc<AttrIndex>] {
        &self.indexes
    }

    /// Names of the attributes an index was actually built over.
    pub fn index_attrs(&self) -> &[String] {
        &self.built_attrs
    }

    /// A new session: a cheap handle owning its own scratch arena and
    /// sharing the database's graph, indexes and plan cache.
    pub fn session(&self) -> Session<'_> {
        Session {
            db: self,
            matcher: Matcher::with_shared_indexes(&self.g, self.indexes.clone()),
        }
    }

    /// Counters of the shared plan cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.lock_cache().stats()
    }

    /// Number of plan compilations this database has performed. Distinct
    /// from [`CacheStats::misses`]: concurrent prepares racing on one
    /// uncached signature all count as misses of the cache probe, but the
    /// per-signature [`cache::PlanSlot`] guarantees exactly one of them
    /// compiles — so absent evictions this equals the number of distinct
    /// *satisfiable* signatures ever prepared, under any amount of
    /// contention. Queries the static analyzer proves unsatisfiable are
    /// never compiled and do not count.
    pub fn compile_count(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Counters of the sibling result cache (hits, invalidations,
    /// derived plans, …). All zero while the layer is disabled.
    pub fn sibling_stats(&self) -> SiblingStats {
        self.lock_siblings().stats()
    }

    /// True when the sibling layer (result replay across relax siblings
    /// plus sibling-plan derivation) is active — a nonzero configured
    /// capacity not overridden by `WHYQ_NO_SIBLING_CACHE`.
    pub fn sibling_cache_enabled(&self) -> bool {
        self.lock_siblings().enabled()
    }

    /// Invalidate every memoized sibling result in O(1) by bumping the
    /// store's generation (Bevy-tick style); entries inserted before the
    /// bump are dropped lazily when next touched. Plans and the plan
    /// cache are unaffected.
    pub fn clear_sibling_cache(&self) {
        self.lock_siblings().clear();
    }

    /// Close the database, handing the graph back (e.g. to mutate and
    /// reopen). All plans ever cached die with the database.
    pub fn close(self) -> PropertyGraph {
        self.g
    }

    /// The plan cache, recovering from lock poisoning. A thread that
    /// panics while holding the cache lock can only have been inside
    /// `probe`/`stats`, whose LRU bookkeeping has no multi-step invariant
    /// a partial update could break (and plan *compilation* happens
    /// outside the lock through a `OnceLock` slot that simply stays
    /// unfilled if it panics) — so the cache is always safe to keep
    /// using, and one crashed worker must not poison every future
    /// prepare on the database.
    fn lock_cache(&self) -> std::sync::MutexGuard<'_, PlanCache> {
        self.cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The sibling cache, recovering from lock poisoning for the same
    /// reason as [`Database::lock_cache`]: every critical section is a
    /// self-contained map/counter update with no multi-step invariant.
    fn lock_siblings(&self) -> std::sync::MutexGuard<'_, SiblingCache> {
        self.siblings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Look up or build the cached plan for `q`. The cache lock is held
    /// only to probe-or-reserve the signature's slot — compilation (which
    /// samples the graph for selectivity estimates) runs outside it, so
    /// concurrent sessions never serialize on each other's compiles.
    /// Sessions racing on the *same* uncached signature serialize on that
    /// signature's slot alone: exactly one compiles, the rest share its
    /// result (see [`cache::PlanCache`]).
    fn plan_for(&self, session: &Session<'_>, q: &PatternQuery) -> Arc<CachedPlan> {
        let sig = q.signature();
        let (slot, _hit) = self.lock_cache().probe(&sig);
        let plan = slot.get_or_compile(|| {
            // static analysis runs between validation and compilation
            // (prepare → analyze → compile). A provably unsatisfiable
            // query is never compiled at all: no name resolution, no
            // selectivity sampling, no planning — executing it answers
            // "no matches" with zero candidate scans, and the report's
            // conflict set names the predicates to relax first.
            let analysis = analyze_against(q, &self.g);
            if analysis.report.is_unsatisfiable() {
                return CachedPlan {
                    compiled: Arc::new(whyq_matcher::compile::Compiled::default()),
                    program: Arc::new(whyq_matcher::QueryProgram::default()),
                    report: Arc::new(analysis.report),
                    seed_lists: std::sync::OnceLock::new(),
                };
            }
            // single-interval sibling of a recently prepared query? Patch
            // the parent's resident plan instead of compiling — this is
            // how the relax loop's interval rewrites and the server
            // batcher's `OneOf` variants skip the whole compile pipeline.
            if let Some((compiled, program)) = self.derive_plan(q) {
                return CachedPlan {
                    compiled: Arc::new(compiled),
                    program: Arc::new(program),
                    report: Arc::new(analysis.report),
                    seed_lists: std::sync::OnceLock::new(),
                };
            }
            self.compiles.fetch_add(1, Ordering::Relaxed);
            // compile the analyzer-simplified query to bytecode: it is
            // result-equivalent to `q` on this graph with identical
            // element ids and topology, so the program serves the
            // caller's original query exactly
            let cq = session.matcher.compile_full(&analysis.query);
            CachedPlan {
                compiled: Arc::new(cq.compiled),
                program: Arc::new(cq.program),
                report: Arc::new(analysis.report),
                seed_lists: std::sync::OnceLock::new(),
            }
        });
        // remember satisfiable queries as derivation parents for future
        // same-shape siblings (re-registering refreshes recency)
        if !plan.program.is_empty() && self.sibling_cache_enabled() {
            self.lock_siblings()
                .register(shape_hash(q), sig, Arc::new(q.clone()));
        }
        plan
    }

    /// Try to derive `q`'s plan from a recently prepared same-shape
    /// parent differing in exactly one predicate interval (see
    /// [`whyq_matcher::derive_sibling`]). Consults the plan cache
    /// read-only ([`PlanCache::peek`]); returns `None` when no parent
    /// qualifies, falling back to a full compile.
    fn derive_plan(
        &self,
        q: &PatternQuery,
    ) -> Option<(whyq_matcher::compile::Compiled, whyq_matcher::QueryProgram)> {
        if !self.sibling_cache_enabled() {
            return None;
        }
        let parents = self.lock_siblings().parents_for(shape_hash(q));
        for (parent_sig, parent_q) in parents {
            let DeltaKind::SingleInterval { target, attr } = QueryDelta::between(&parent_q, q).kind
            else {
                continue;
            };
            // read-only peek: a parent still compiling (or evicted) is
            // simply skipped
            let Some(parent_plan) = self.lock_cache().peek(&parent_sig).and_then(|s| s.get())
            else {
                continue;
            };
            if parent_plan.program.is_empty() {
                continue;
            }
            let Some(derived) = whyq_matcher::derive_sibling(
                &self.g,
                &self.indexes,
                &parent_plan.compiled,
                &parent_plan.program,
                q,
                target,
                &attr,
            ) else {
                continue;
            };
            self.lock_siblings().note_derived();
            return Some(derived);
        }
        None
    }
}

/// Structural validation applied at prepare time — the panics the
/// pre-facade API reserved for misuse become [`WhyqError::InvalidQuery`].
fn validate(q: &PatternQuery) -> Result<(), WhyqError> {
    for e in q.edge_ids() {
        let ed = q.edge(e).expect("live");
        if ed.directions.is_empty() {
            return Err(WhyqError::InvalidQuery {
                reason: format!("query edge {e} admits no direction"),
            });
        }
        if q.vertex(ed.src).is_none() || q.vertex(ed.dst).is_none() {
            return Err(WhyqError::InvalidQuery {
                reason: format!("query edge {e} references a removed vertex"),
            });
        }
    }
    Ok(())
}

/// A lightweight execution handle: shares the database's graph, indexes
/// and plan cache, owns its scratch arena.
///
/// Sessions are cheap to create and independent — each one can run
/// searches (and hold suspended [`MatchStream`]s) without contending with
/// any other session's scratch state. This is the per-worker unit for
/// parallel evaluation: hand one session to each thread.
#[derive(Debug)]
pub struct Session<'db> {
    db: &'db Database,
    matcher: Matcher<'db>,
}

impl<'db> Session<'db> {
    /// The database this session belongs to.
    pub fn database(&self) -> &'db Database {
        self.db
    }

    /// The session's graph (the database's).
    pub fn graph(&self) -> &'db PropertyGraph {
        self.db.graph()
    }

    /// Prepare `q`: validate it, then fetch its compilation and plans from
    /// the shared cache (compiling at most once per distinct signature).
    ///
    /// # Examples
    ///
    /// ```
    /// use whyq_graph::{PropertyGraph, Value};
    /// use whyq_query::{Predicate, QueryBuilder};
    /// use whyq_session::Database;
    ///
    /// let mut g = PropertyGraph::new();
    /// g.add_vertex([("type", Value::str("person"))]);
    /// let db = Database::open(g)?;
    /// let session = db.session();
    ///
    /// let q = QueryBuilder::new("people")
    ///     .vertex("p", [Predicate::eq("type", "person")])
    ///     .build();
    /// let prepared = session.prepare(&q)?; // compiled once, cached by signature
    /// assert_eq!(prepared.count()?, 1);
    /// session.prepare(&q)?; // same signature: cache hit, no recompilation
    /// assert_eq!(db.compile_count(), 1);
    /// # Ok::<(), whyq_session::WhyqError>(())
    /// ```
    pub fn prepare(&self, q: &PatternQuery) -> Result<PreparedQuery<'_, 'db>, WhyqError> {
        validate(q)?;
        let plan = self.db.plan_for(self, q);
        Ok(PreparedQuery {
            session: self,
            // the caller's own query, not the cache entry's: signatures
            // exclude display-only fields (the query name), so an
            // equal-signature cache hit must still report the identity it
            // was prepared with. Execution is signature-determined, so
            // running the caller's clone against the cached plan is exact.
            query: Arc::new(q.clone()),
            plan,
        })
    }

    /// Prepare and enumerate all result graphs of `q`.
    pub fn find(&self, q: &PatternQuery) -> Result<Vec<ResultGraph>, WhyqError> {
        self.find_opts(q, MatchOptions::default())
    }

    /// Prepare and enumerate result graphs of `q` under `opts`.
    pub fn find_opts(
        &self,
        q: &PatternQuery,
        opts: MatchOptions,
    ) -> Result<Vec<ResultGraph>, WhyqError> {
        self.prepare(q)?.find_opts(opts)
    }

    /// Prepare and count the result graphs of `q` (injective, no cap).
    pub fn count(&self, q: &PatternQuery) -> Result<u64, WhyqError> {
        self.count_opts(q, MatchOptions::default())
    }

    /// Prepare and count the result graphs of `q` under `opts`.
    pub fn count_opts(&self, q: &PatternQuery, opts: MatchOptions) -> Result<u64, WhyqError> {
        self.prepare(q)?.count_opts(opts)
    }

    /// Prepare and enumerate under `opts`, keeping the partial results of
    /// an interrupted run — see [`PreparedQuery::find_governed`].
    pub fn find_governed(
        &self,
        q: &PatternQuery,
        opts: MatchOptions,
    ) -> Result<Governed<Vec<ResultGraph>>, WhyqError> {
        Ok(self.prepare(q)?.find_governed(opts))
    }

    /// Prepare and count under `opts`, keeping the partial count of an
    /// interrupted run — see [`PreparedQuery::count_governed`].
    pub fn count_governed(
        &self,
        q: &PatternQuery,
        opts: MatchOptions,
    ) -> Result<Governed<u64>, WhyqError> {
        Ok(self.prepare(q)?.count_governed(opts))
    }

    /// Counters of the shared plan cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.db.cache_stats()
    }
}

/// A compiled, planned, cache-resident query bound to a session.
///
/// Executing a prepared query runs the cached plan directly: no name
/// resolution, no selectivity estimation, no planning. All execution
/// methods may be called any number of times.
#[derive(Debug)]
pub struct PreparedQuery<'s, 'db> {
    session: &'s Session<'db>,
    query: Arc<PatternQuery>,
    plan: Arc<CachedPlan>,
}

impl<'db> PreparedQuery<'_, 'db> {
    /// The query this handle was prepared with.
    pub fn query(&self) -> &PatternQuery {
        &self.query
    }

    /// The canonical signature the plan is cached under.
    pub fn signature(&self) -> String {
        self.query.signature()
    }

    /// True when static analysis or compilation proved the query can match
    /// nothing in this database (contradictory predicates, an unknown
    /// attribute/type, a string constant the value dictionary has never
    /// seen, an empty interval). See [`PreparedQuery::report`] for *why*.
    pub fn is_unsatisfiable(&self) -> bool {
        self.plan.program.is_empty() && self.query.num_vertices() > 0
    }

    /// The static-analysis report produced when this query's cache entry
    /// was built (`prepare → analyze → compile`): merged/subsumed
    /// predicates, pruned constants and types, and — for an
    /// [unsatisfiable](PreparedQuery::is_unsatisfiable) query — the
    /// error-level diagnostics whose
    /// [`AnalysisReport::conflict_set`] names the conflicting predicates
    /// the relax loop should target first.
    pub fn report(&self) -> &AnalysisReport {
        &self.plan.report
    }

    /// Enumerate all result graphs (injective).
    ///
    /// # Examples
    ///
    /// ```
    /// use whyq_graph::{PropertyGraph, Value};
    /// use whyq_query::{Predicate, QueryBuilder, QVid};
    /// use whyq_session::Database;
    ///
    /// let mut g = PropertyGraph::new();
    /// let anna = g.add_vertex([("type", Value::str("person"))]);
    /// let db = Database::open(g)?;
    /// let session = db.session();
    /// let q = QueryBuilder::new("people")
    ///     .vertex("p", [Predicate::eq("type", "person")])
    ///     .build();
    ///
    /// let results = session.prepare(&q)?.find()?;
    /// assert_eq!(results.len(), 1);
    /// assert_eq!(results[0].vertex(QVid(0)), Some(anna));
    /// # Ok::<(), whyq_session::WhyqError>(())
    /// ```
    pub fn find(&self) -> Result<Vec<ResultGraph>, WhyqError> {
        self.find_opts(MatchOptions::default())
    }

    /// Enumerate result graphs under `opts`.
    ///
    /// The contract of this entry point is an **exact** answer: when
    /// `opts.budget` trips mid-search (deadline, step budget or cancel),
    /// the truncated results are discarded and
    /// [`WhyqError::Interrupted`] is returned, so a partial answer can
    /// never be mistaken for a complete one. Use
    /// [`PreparedQuery::find_governed`] to keep the partial results.
    pub fn find_opts(&self, opts: MatchOptions) -> Result<Vec<ResultGraph>, WhyqError> {
        let governed = self.find_governed(opts);
        match governed.termination {
            Termination::Complete => Ok(governed.value),
            termination => Err(WhyqError::Interrupted { termination }),
        }
    }

    /// Enumerate result graphs under `opts`, keeping whatever an
    /// interrupted run produced: the returned [`Governed`] tags the
    /// results with the budget's [`Termination`]. On a trip the value is
    /// a prefix of the serial enumeration (per component; across
    /// components of a disconnected query it is a subset of the cartesian
    /// product) — the best-effort shape a serving layer degrades to.
    pub fn find_governed(&self, opts: MatchOptions) -> Governed<Vec<ResultGraph>> {
        if let Some(governed) = self.find_incremental(&opts) {
            return governed;
        }
        let budget = opts.budget.clone();
        let value = self.session.matcher.find_compiled(
            &self.query,
            &self.plan.compiled,
            &self.plan.program,
            opts,
        );
        Governed {
            value,
            termination: budget.termination(),
        }
    }

    /// Count result graphs (injective, exact).
    pub fn count(&self) -> Result<u64, WhyqError> {
        self.count_opts(MatchOptions::default())
    }

    /// Count result graphs under `opts`, stopping early at `opts.limit` —
    /// same exact-answer contract as [`PreparedQuery::find_opts`]: a
    /// tripped budget is [`WhyqError::Interrupted`], never a silently
    /// low count.
    pub fn count_opts(&self, opts: MatchOptions) -> Result<u64, WhyqError> {
        let governed = self.count_governed(opts);
        match governed.termination {
            Termination::Complete => Ok(governed.value),
            termination => Err(WhyqError::Interrupted { termination }),
        }
    }

    /// Count result graphs under `opts`, keeping the partial count of an
    /// interrupted run — the counting twin of
    /// [`PreparedQuery::find_governed`]. A non-complete termination tags
    /// the count as a lower bound.
    ///
    /// # Examples
    ///
    /// ```
    /// use whyq_graph::{PropertyGraph, Value};
    /// use whyq_matcher::{Budget, MatchOptions, Termination};
    /// use whyq_query::{Predicate, QueryBuilder};
    /// use whyq_session::Database;
    ///
    /// let mut g = PropertyGraph::new();
    /// for _ in 0..5000 {
    ///     g.add_vertex([("type", Value::str("person"))]);
    /// }
    /// let db = Database::open(g)?;
    /// let session = db.session();
    /// let q = QueryBuilder::new("people")
    ///     .vertex("p", [Predicate::eq("type", "person")])
    ///     .build();
    ///
    /// // a starved budget trips mid-search: the partial count survives,
    /// // tagged with why the run stopped
    /// let opts = MatchOptions::default().with_budget(Budget::steps(10));
    /// let governed = session.prepare(&q)?.count_governed(opts);
    /// assert_eq!(governed.termination, Termination::BudgetExhausted);
    /// assert!(governed.value < 5000); // a lower bound, not the exact count
    /// # Ok::<(), whyq_session::WhyqError>(())
    /// ```
    pub fn count_governed(&self, opts: MatchOptions) -> Governed<u64> {
        if let Some(governed) = self.count_incremental(&opts) {
            return governed;
        }
        let budget = opts.budget.clone();
        let value = self.session.matcher.count_compiled(
            &self.query,
            &self.plan.compiled,
            &self.plan.program,
            opts,
        );
        Governed {
            value,
            termination: budget.termination(),
        }
    }

    /// The per-component seed lists and raw component vertex sets, when
    /// the incremental (sibling-cache) path applies to this query:
    /// sibling layer enabled, satisfiable program, and a component list
    /// aligned with the program (one program per weakly-connected
    /// component, in the same order — guaranteed by the planner, checked
    /// defensively here).
    fn incremental_parts(&self) -> Option<(Vec<Vec<whyq_query::QVid>>, &[SeedList])> {
        let db = self.session.db;
        if !db.sibling_cache_enabled() {
            return None;
        }
        let program = &self.plan.program;
        if self.query.num_vertices() == 0 || program.is_empty() {
            return None;
        }
        let comps = self.query.weakly_connected_components();
        if comps.len() != program.components().len() {
            return None;
        }
        let seed_lists: &[SeedList] = self.plan.seed_lists.get_or_init(|| {
            let matcher = &self.session.matcher;
            program
                .components()
                .iter()
                .map(|prog| matcher.seed_list_for(prog))
                .collect()
        });
        Some((comps, seed_lists))
    }

    /// Incremental counting: replay memoized per-component counts from
    /// the database's sibling cache and execute only the components the
    /// sibling's delta invalidated, as whole-component [`WorkUnit`]s.
    /// Mirrors [`whyq_matcher::Matcher::count_compiled`] exactly —
    /// program-order evaluation, per-component cap at `opts.limit`,
    /// early zero on an empty component, saturating product capped at the
    /// limit — so the value is bit-identical to a full execution.
    /// Only budget-complete unit results are inserted; replayed units
    /// consume no budget (the governed value stays a valid lower bound).
    /// Returns `None` when the sibling layer is disabled and the caller
    /// should run the plain path.
    fn count_incremental(&self, opts: &MatchOptions) -> Option<Governed<u64>> {
        let (comps, seed_lists) = self.incremental_parts()?;
        let db = self.session.db;
        let budget = &opts.budget;
        // mirror the engine: an already-tripped budget refuses up front
        if budget.poll().is_err() {
            return Some(Governed {
                value: 0,
                termination: budget.termination(),
            });
        }
        let limit = opts.limit.map(|l| l as u64);
        let mut replayed = 0u64;
        let mut recomputed = 0u64;
        let mut counts: Vec<u64> = Vec::with_capacity(comps.len());
        let mut zero = false;
        for (i, comp) in comps.iter().enumerate() {
            let sig = component_signature(&self.query, comp);
            let cached = db
                .lock_siblings()
                .lookup_count(&sig, opts.injective, opts.limit);
            let c = match cached {
                Some(c) => {
                    replayed += 1;
                    c
                }
                None => {
                    recomputed += 1;
                    let unit = WorkUnit::whole(i, &seed_lists[i]);
                    let c = self.session.matcher.count_unit(
                        &self.query,
                        &self.plan.compiled,
                        &self.plan.program,
                        &unit,
                        &seed_lists[i],
                        opts.clone(),
                    );
                    // a tripped budget means `c` is a partial prefix —
                    // caching it would replay a truncated answer as exact
                    if budget.termination().is_complete() {
                        db.lock_siblings()
                            .insert_count(sig, opts.injective, opts.limit, c);
                    }
                    c
                }
            };
            if c == 0 {
                // a matchless component zeroes the product; later
                // components never run (same as the serial engine)
                zero = true;
                break;
            }
            counts.push(c);
        }
        db.lock_siblings().finish_query(replayed, recomputed);
        let value = if zero {
            0
        } else {
            let total = counts.into_iter().fold(1u64, u64::saturating_mul);
            match limit {
                Some(l) => total.min(l),
                None => total,
            }
        };
        Some(Governed {
            value,
            termination: budget.termination(),
        })
    }

    /// Incremental enumeration — the row twin of
    /// [`PreparedQuery::count_incremental`]: memoized component rows are
    /// replayed only when the executing program's fingerprint matches the
    /// one that produced them (derived sibling programs may enumerate in
    /// a different order than a fresh compile), then merged through the
    /// same cartesian combiner as a full execution.
    fn find_incremental(&self, opts: &MatchOptions) -> Option<Governed<Vec<ResultGraph>>> {
        let (comps, seed_lists) = self.incremental_parts()?;
        let db = self.session.db;
        let budget = &opts.budget;
        if budget.poll().is_err() {
            return Some(Governed {
                value: Vec::new(),
                termination: budget.termination(),
            });
        }
        let cap = opts.limit.unwrap_or(usize::MAX);
        let mut replayed = 0u64;
        let mut recomputed = 0u64;
        let mut per_component: Vec<Vec<ResultGraph>> = Vec::with_capacity(comps.len());
        let mut empty = false;
        for (i, comp) in comps.iter().enumerate() {
            let sig = component_signature(&self.query, comp);
            let fingerprint = self.plan.program.components()[i].fingerprint();
            let cached =
                db.lock_siblings()
                    .lookup_rows(&sig, opts.injective, opts.limit, fingerprint);
            let rows = match cached {
                Some(rows) => {
                    replayed += 1;
                    (*rows).clone()
                }
                None => {
                    recomputed += 1;
                    let unit = WorkUnit::whole(i, &seed_lists[i]);
                    let rows = self.session.matcher.find_unit(
                        &self.query,
                        &self.plan.compiled,
                        &self.plan.program,
                        &unit,
                        &seed_lists[i],
                        opts.clone(),
                    );
                    if budget.termination().is_complete() {
                        db.lock_siblings().insert_rows(
                            sig,
                            opts.injective,
                            opts.limit,
                            fingerprint,
                            Arc::new(rows.clone()),
                        );
                    }
                    rows
                }
            };
            if rows.is_empty() {
                empty = true;
                break;
            }
            per_component.push(rows);
        }
        db.lock_siblings().finish_query(replayed, recomputed);
        let value = if empty {
            Vec::new()
        } else {
            combine_components(per_component, cap)
        };
        Some(Governed {
            value,
            termination: budget.termination(),
        })
    }

    /// Enumerate all result graphs (injective) across the threads of the
    /// environment-configured pool — see [`PreparedQuery::find_par_opts`].
    pub fn find_par(&self) -> Result<Vec<ResultGraph>, WhyqError> {
        self.find_par_opts(MatchOptions::default(), &ParallelOpts::default())
    }

    /// Enumerate result graphs under `opts` in parallel: each weakly
    /// connected component's seed set is sharded into [`WorkUnit`]s
    /// (subranges of at least `par.min_seeds_per_split` seeds), executed
    /// across up to `par.threads` workers — each owning its own session
    /// arena — and merged through the matcher's cartesian combiner.
    ///
    /// Returns exactly the multiset [`PreparedQuery::find_opts`] returns.
    /// **Result order is unspecified in parallel mode** (the current
    /// implementation happens to preserve serial order, but only the
    /// multiset is contractual); under a `limit`, *which* results survive
    /// the cap is likewise unspecified. Queries too small to shard — or a
    /// 1-thread configuration — fall back to the serial path unchanged.
    pub fn find_par_opts(
        &self,
        opts: MatchOptions,
        par: &ParallelOpts,
    ) -> Result<Vec<ResultGraph>, WhyqError> {
        let Some((units, seed_lists)) = self.shard(par) else {
            return self.find_opts(opts);
        };
        // workers poll the budget's cancel state between units (and the
        // DFS inside each unit observes it at block granularity)
        let exec = Executor::new(par.clone());
        let query = &*self.query;
        let compiled = &*self.plan.compiled;
        let program = &*self.plan.program;
        let outputs = executor::run_with_sessions(&exec, self.session.db, units.len(), {
            let units = &units;
            let seed_lists = &seed_lists;
            let opts = opts.clone();
            move |session, i| {
                let unit = &units[i];
                session.matcher.find_unit(
                    query,
                    compiled,
                    program,
                    unit,
                    &seed_lists[unit.component],
                    opts.clone(),
                )
            }
        })?;
        match opts.budget.termination() {
            Termination::Complete => {}
            termination => return Err(WhyqError::Interrupted { termination }),
        }
        let mut per_comp: Vec<Vec<ResultGraph>> = vec![Vec::new(); program.components().len()];
        for (unit, out) in units.iter().zip(outputs) {
            per_comp[unit.component].extend(out);
        }
        if per_comp.iter().any(Vec::is_empty) {
            // a component with no partial bindings zeroes the product
            return Ok(Vec::new());
        }
        if let Some(l) = opts.limit {
            // mirror the serial engine: each component's list is capped
            // before combination
            for comp in &mut per_comp {
                comp.truncate(l);
            }
        }
        Ok(combine_components(
            per_comp,
            opts.limit.unwrap_or(usize::MAX),
        ))
    }

    /// Count result graphs (injective, exact) in parallel — see
    /// [`PreparedQuery::count_par_opts`].
    pub fn count_par(&self) -> Result<u64, WhyqError> {
        self.count_par_opts(MatchOptions::default(), &ParallelOpts::default())
    }

    /// Count result graphs under `opts` in parallel: per-component seed
    /// shards are counted across workers, summed per component and
    /// multiplied — always equal to [`PreparedQuery::count_opts`],
    /// including under an `opts.limit` cap (both report
    /// `min(C(Q), limit)`). Falls back to the serial path when the query
    /// is too small to shard or `par.threads <= 1`.
    pub fn count_par_opts(&self, opts: MatchOptions, par: &ParallelOpts) -> Result<u64, WhyqError> {
        let Some((units, seed_lists)) = self.shard(par) else {
            return self.count_opts(opts);
        };
        let exec = Executor::new(par.clone());
        let query = &*self.query;
        let compiled = &*self.plan.compiled;
        let program = &*self.plan.program;
        let counts = executor::run_with_sessions(&exec, self.session.db, units.len(), {
            let units = &units;
            let seed_lists = &seed_lists;
            let opts = opts.clone();
            move |session, i| {
                let unit = &units[i];
                session.matcher.count_unit(
                    query,
                    compiled,
                    program,
                    unit,
                    &seed_lists[unit.component],
                    opts.clone(),
                )
            }
        })?;
        match opts.budget.termination() {
            Termination::Complete => {}
            termination => return Err(WhyqError::Interrupted { termination }),
        }
        let mut per_comp = vec![0u64; program.components().len()];
        for (unit, c) in units.iter().zip(counts) {
            per_comp[unit.component] = per_comp[unit.component].saturating_add(c);
        }
        let limit = opts.limit.map(|l| l as u64);
        let mut total: u64 = 1;
        for c in per_comp {
            if c == 0 {
                return Ok(0);
            }
            // per-unit counts stop early at the limit, so a component sum
            // may undershoot its true count but never min(true, limit) —
            // capping here keeps the product identical to the serial one
            let c = match limit {
                Some(l) => c.min(l),
                None => c,
            };
            total = total.saturating_mul(c);
        }
        Ok(match limit {
            Some(l) => total.min(l),
            None => total,
        })
    }

    /// Decompose the query into parallel work units, or `None` when serial
    /// execution is the right call: a 1-thread configuration, an
    /// empty/unsatisfiable query, or a single component too small to shard
    /// (below `min_seeds_per_split`) — the threshold below which thread
    /// startup would outweigh the search.
    fn shard(&self, par: &ParallelOpts) -> Option<(Vec<WorkUnit>, &[SeedList])> {
        let threads = par.effective_threads();
        if threads <= 1 || self.query.num_vertices() == 0 || self.plan.program.is_empty() {
            return None;
        }
        // materialized once per cached plan (graph and indexes are sealed
        // for the database's lifetime) and shared across sessions, so
        // repeat parallel executions pay no bucket copies or union sorts
        let seed_lists: &[SeedList] = self.plan.seed_lists.get_or_init(|| {
            let matcher = &self.session.matcher;
            self.plan
                .program
                .components()
                .iter()
                .map(|prog| matcher.seed_list_for(prog))
                .collect()
        });
        let floor = par.min_seeds_per_split.max(1);
        let mut units = Vec::new();
        for (component, seeds) in seed_lists.iter().enumerate() {
            if seeds.len() >= floor.saturating_mul(2) {
                // oversubscribe so an unlucky chunk doesn't idle the pool;
                // each chunk still holds at least `floor` seeds
                let chunks = (seeds.len() / floor).min(threads.saturating_mul(4)).max(1);
                units.extend(
                    split_ranges(seeds.len(), chunks)
                        .into_iter()
                        .map(|range| WorkUnit { component, range }),
                );
            } else {
                units.push(WorkUnit::whole(component, seeds));
            }
        }
        if units.len() <= 1 {
            return None;
        }
        Some((units, seed_lists))
    }

    /// Stream result graphs lazily (injective, unlimited): the backtracking
    /// DFS suspends after every yielded match, so consuming `k` results
    /// costs `O(k)` search work regardless of the full result size.
    ///
    /// # Examples
    ///
    /// ```
    /// use whyq_graph::{PropertyGraph, Value};
    /// use whyq_query::{Predicate, QueryBuilder};
    /// use whyq_session::Database;
    ///
    /// let mut g = PropertyGraph::new();
    /// for _ in 0..1000 {
    ///     g.add_vertex([("type", Value::str("person"))]);
    /// }
    /// let db = Database::open(g)?;
    /// let session = db.session();
    /// let q = QueryBuilder::new("people")
    ///     .vertex("p", [Predicate::eq("type", "person")])
    ///     .build();
    ///
    /// // taking 3 of 1000 results does ~3 results' worth of search work;
    /// // no result set is materialized
    /// let first_three: Vec<_> = session.prepare(&q)?.stream().take(3).collect();
    /// assert_eq!(first_three.len(), 3);
    /// # Ok::<(), whyq_session::WhyqError>(())
    /// ```
    pub fn stream(&self) -> MatchStream<'db> {
        self.stream_opts(MatchOptions::default())
    }

    /// Stream result graphs lazily under `opts`. The stream owns its own
    /// search state — it stays valid after the prepared query or session
    /// it came from is dropped, and any number of streams may be in flight
    /// at once.
    pub fn stream_opts(&self, opts: MatchOptions) -> MatchStream<'db> {
        MatchStream::over(
            self.session.db.graph(),
            self.session.db.indexes().to_vec(),
            Arc::clone(&self.query),
            Arc::clone(&self.plan.compiled),
            Arc::clone(&self.plan.program),
            opts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whyq_graph::Value;
    use whyq_query::{Predicate, QueryBuilder};

    fn social() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let a = g.add_vertex([("type", Value::str("person"))]);
        let b = g.add_vertex([("type", Value::str("person"))]);
        let city = g.add_vertex([("type", Value::str("city"))]);
        g.add_edge(a, b, "knows", []);
        g.add_edge(a, city, "livesIn", []);
        g.add_edge(b, city, "livesIn", []);
        g
    }

    fn pair_query() -> PatternQuery {
        QueryBuilder::new("pair")
            .vertex("p1", [Predicate::eq("type", "person")])
            .vertex("p2", [Predicate::eq("type", "person")])
            .edge("p1", "p2", "knows")
            .build()
    }

    #[test]
    fn open_builds_configured_indexes() {
        let db = Database::open(social()).unwrap();
        assert_eq!(db.index_attrs(), ["type".to_string()]);
        assert_eq!(db.indexes().len(), 1);
        let none = Database::open_with(social(), DatabaseConfig::unindexed()).unwrap();
        assert!(none.indexes().is_empty());
    }

    #[test]
    fn strict_config_rejects_unknown_attrs() {
        let err = Database::open_with(
            social(),
            DatabaseConfig::with_indexes(["nonexistent"]).strict(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            WhyqError::UnknownIndexAttribute {
                attr: "nonexistent".into()
            }
        );
        // lenient mode skips it
        let db =
            Database::open_with(social(), DatabaseConfig::with_indexes(["nonexistent"])).unwrap();
        assert!(db.indexes().is_empty());
    }

    #[test]
    fn prepare_executes_and_caches() {
        let db = Database::open(social()).unwrap();
        let session = db.session();
        let q = pair_query();
        let prepared = session.prepare(&q).unwrap();
        assert_eq!(prepared.count().unwrap(), 1);
        assert_eq!(prepared.find().unwrap().len(), 1);
        assert_eq!(prepared.stream().count(), 1);
        let before = session.cache_stats();
        let again = session.prepare(&q).unwrap();
        assert_eq!(again.count().unwrap(), 1);
        let after = session.cache_stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn sessions_share_the_plan_cache() {
        let db = Database::open(social()).unwrap();
        let q = pair_query();
        let s1 = db.session();
        s1.prepare(&q).unwrap();
        let s2 = db.session();
        s2.prepare(&q).unwrap();
        let stats = db.cache_stats();
        assert_eq!(stats.misses, 1, "second session reuses the first's plan");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn invalid_query_is_an_error_not_a_panic() {
        let db = Database::open(social()).unwrap();
        let session = db.session();
        let mut q = pair_query();
        q.edge_mut(whyq_query::QEid(0))
            .unwrap()
            .directions
            .remove(whyq_query::Direction::Forward);
        let err = session.prepare(&q).unwrap_err();
        assert!(matches!(err, WhyqError::InvalidQuery { .. }));
    }

    #[test]
    fn unsatisfiable_queries_answer_without_scanning() {
        let db = Database::open(social()).unwrap();
        let session = db.session();
        let q = QueryBuilder::new("robot")
            .vertex("r", [Predicate::eq("type", "robot")])
            .build();
        let prepared = session.prepare(&q).unwrap();
        assert!(prepared.is_unsatisfiable());
        assert_eq!(prepared.count().unwrap(), 0);
        assert!(prepared.find().unwrap().is_empty());
        assert_eq!(prepared.stream().count(), 0);
    }

    #[test]
    fn static_analysis_short_circuits_contradictions_without_compiling() {
        use whyq_query::{QVid, Target};
        let db = Database::open(social()).unwrap();
        let session = db.session();
        // age > 30 ∧ age < 20 — provably empty from the query text alone
        let q = QueryBuilder::new("contra")
            .vertex(
                "p",
                [
                    Predicate::eq("type", "person"),
                    Predicate::at_least("age", 31.0),
                    Predicate::at_most("age", 20.0),
                ],
            )
            .build();
        let prepared = session.prepare(&q).unwrap();
        assert!(prepared.is_unsatisfiable());
        assert!(prepared.report().is_unsatisfiable());
        // the report names the conflicting predicates…
        assert_eq!(
            prepared.report().conflict_set(),
            vec![(Target::Vertex(QVid(0)), Some("age".to_string()))]
        );
        // …and the query was never compiled: zero candidate scans
        assert_eq!(db.compile_count(), 0);
        assert_eq!(prepared.count().unwrap(), 0);
        assert!(prepared.find().unwrap().is_empty());
        assert_eq!(prepared.stream().count(), 0);
        // the verdict is cached like any plan
        let again = session.prepare(&q).unwrap();
        assert!(again.is_unsatisfiable());
        assert_eq!(db.compile_count(), 0);
        // a satisfiable query on the same database still compiles
        session.prepare(&pair_query()).unwrap();
        assert_eq!(db.compile_count(), 1);
    }

    #[test]
    fn reordered_and_duplicated_predicates_share_one_plan() {
        let mut g = social();
        g.add_vertex([("type", Value::str("person")), ("age", Value::Int(30))]);
        let db = Database::open(g).unwrap();
        let session = db.session();
        let q1 = QueryBuilder::new("a")
            .vertex(
                "p",
                [
                    Predicate::eq("type", "person"),
                    Predicate::at_least("age", 18.0),
                ],
            )
            .build();
        // same constraints, reordered, with one predicate repeated
        let q2 = QueryBuilder::new("b")
            .vertex(
                "p",
                [
                    Predicate::at_least("age", 18.0),
                    Predicate::eq("type", "person"),
                    Predicate::eq("type", "person"),
                ],
            )
            .build();
        assert_eq!(q1.signature(), q2.signature());
        session.prepare(&q1).unwrap();
        session.prepare(&q2).unwrap();
        assert_eq!(db.compile_count(), 1, "one plan-cache slot for both");
        let stats = db.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn stream_outlives_session_and_prepared() {
        let db = Database::open(social()).unwrap();
        let stream = {
            let session = db.session();
            let prepared = session.prepare(&pair_query()).unwrap();
            prepared.stream()
        };
        assert_eq!(stream.count(), 1);
    }

    #[test]
    fn parallel_execution_matches_serial() {
        let db = Database::open(social()).unwrap();
        let session = db.session();
        let q = pair_query();
        let prepared = session.prepare(&q).unwrap();
        let serial = prepared.find().unwrap();
        for threads in [1usize, 2, 4] {
            let par = ParallelOpts::with_threads(threads).min_seeds_per_split(1);
            assert_eq!(
                prepared
                    .find_par_opts(MatchOptions::default(), &par)
                    .unwrap(),
                serial,
                "threads={threads}"
            );
            assert_eq!(
                prepared
                    .count_par_opts(MatchOptions::default(), &par)
                    .unwrap(),
                serial.len() as u64
            );
        }
        // env-default entry points agree too (whatever the thread count)
        assert_eq!(prepared.find_par().unwrap().len(), serial.len());
        assert_eq!(prepared.count_par().unwrap(), serial.len() as u64);
    }

    #[test]
    fn count_batch_reports_per_query_results_in_order() {
        let db = Database::open(social()).unwrap();
        let q1 = pair_query();
        let q2 = QueryBuilder::new("people")
            .vertex("p", [Predicate::eq("type", "person")])
            .build();
        let mut invalid = pair_query();
        invalid
            .edge_mut(whyq_query::QEid(0))
            .unwrap()
            .directions
            .remove(whyq_query::Direction::Forward);
        invalid
            .edge_mut(whyq_query::QEid(0))
            .unwrap()
            .directions
            .remove(whyq_query::Direction::Backward);
        for exec in [
            Executor::serial(),
            Executor::new(ParallelOpts::with_threads(4)),
        ] {
            let out = exec.count_batch(&db, &[&q1, &q2, &invalid, &q1], MatchOptions::default());
            assert_eq!(out.len(), 4);
            assert_eq!(*out[0].as_ref().unwrap(), 1);
            assert_eq!(*out[1].as_ref().unwrap(), 2);
            assert!(
                matches!(out[2], Err(WhyqError::InvalidQuery { .. })),
                "a bad query errors in its own slot without failing the batch"
            );
            assert_eq!(*out[3].as_ref().unwrap(), 1);
        }
    }

    #[test]
    fn find_batch_reports_per_request_governed_results_in_order() {
        use whyq_matcher::Budget;
        let db = Database::open(social()).unwrap();
        let q1 = pair_query();
        let q2 = QueryBuilder::new("people")
            .vertex("p", [Predicate::eq("type", "person")])
            .build();
        let mut invalid = pair_query();
        invalid
            .edge_mut(whyq_query::QEid(0))
            .unwrap()
            .directions
            .remove(whyq_query::Direction::Forward);
        invalid
            .edge_mut(whyq_query::QEid(0))
            .unwrap()
            .directions
            .remove(whyq_query::Direction::Backward);
        // a pre-cancelled request degrades its own slot, not the batch
        let token = CancelToken::new();
        token.cancel();
        let starved = MatchOptions::governed(Budget::cancelled_by(&token));
        for exec in [
            Executor::serial(),
            Executor::new(ParallelOpts::with_threads(4)),
        ] {
            let requests: Vec<(&PatternQuery, MatchOptions)> = vec![
                (&q1, MatchOptions::default()),
                (&q2, MatchOptions::default()),
                (&invalid, MatchOptions::default()),
                (&q1, starved.clone()),
            ];
            let out = exec.find_batch(&db, &requests);
            assert_eq!(out.len(), 4);
            let full = out[0].as_ref().unwrap();
            assert_eq!(
                (full.value.len(), full.termination),
                (1, Termination::Complete)
            );
            assert_eq!(out[1].as_ref().unwrap().value.len(), 2);
            assert!(
                matches!(out[2], Err(WhyqError::InvalidQuery { .. })),
                "a bad request errors in its own slot without failing the batch"
            );
            let cancelled = out[3].as_ref().unwrap();
            assert_eq!(cancelled.termination, Termination::Cancelled);
        }
        // every distinct signature compiled exactly once across all batches
        assert_eq!(db.compile_count(), 2);
    }

    #[test]
    fn close_returns_the_graph() {
        let db = Database::open(social()).unwrap();
        let g = db.close();
        assert_eq!(g.num_vertices(), 3);
    }
}
