//! Parallel execution: a scoped-thread work pool over per-worker sessions.
//!
//! The why-query engine's dominant cost is *many independent searches*:
//! hundreds of sibling cardinality probes in the relax loop and the MCS
//! traversals (inter-query parallelism), and — for one big query — the
//! independent seed subranges of each weakly connected component
//! (intra-query parallelism, the `whyq-matcher` work model). Both shapes
//! reduce to "run N pure tasks against one shared [`Database`]", which is
//! exactly what [`Executor`] provides, with no dependencies beyond
//! `std::thread::scope`.
//!
//! ## The `Send + Sync` contract
//!
//! [`Database`] is `Send + Sync` **by design** (asserted at compile time in
//! `whyq-session`): the sealed graph and the prebuilt indexes are immutable
//! after open, and the only mutable shared state — the plan cache — is
//! behind a `Mutex` whose per-signature slots compile at most once (see
//! [`crate::cache::PlanCache`]). All mutable *search* state lives in
//! per-worker [`Session`]s: every worker thread creates its own session
//! (and with it its own matcher scratch arena), so workers never contend
//! on anything but the plan-cache lock, which is held only for probes and
//! inserts, never across a compile or a search.
//!
//! ## Determinism
//!
//! Task *results* are returned in task order regardless of which worker
//! ran what, so batch APIs are deterministic functions of their inputs.
//! Result *order within* a parallel `find_par` is unspecified (documented
//! on the method); counts and result multisets always equal their serial
//! counterparts.

use crate::{Database, Governed, Session, WhyqError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use whyq_matcher::{CancelToken, MatchOptions, ResultGraph, Termination};
use whyq_query::PatternQuery;

/// Render a caught panic payload for [`WhyqError::WorkerPanicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Default seed-range split floor: a component whose seed list is smaller
/// than this is evaluated as a single unit — below it, thread start-up
/// outweighs the search.
pub const DEFAULT_MIN_SEEDS_PER_SPLIT: usize = 64;

/// Tuning knobs of parallel evaluation.
///
/// `threads == 1` means strictly serial execution on the calling thread
/// (no pool, no spawns) — the safe default everywhere determinism of
/// *timing* matters. `threads > 1` enables the scoped pool; correctness
/// is unaffected either way (`parallel == serial` is property-tested).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelOpts {
    /// Worker threads to run tasks on (capped at the task count). `0` is
    /// treated as 1.
    pub threads: usize,
    /// Do not shard a component whose seed list holds fewer candidates
    /// than this; it runs as one work unit instead.
    pub min_seeds_per_split: usize,
}

impl ParallelOpts {
    /// Strictly serial execution (1 thread, no spawns).
    pub fn serial() -> Self {
        ParallelOpts {
            threads: 1,
            min_seeds_per_split: DEFAULT_MIN_SEEDS_PER_SPLIT,
        }
    }

    /// `threads` workers with the default split floor.
    pub fn with_threads(threads: usize) -> Self {
        ParallelOpts {
            threads,
            min_seeds_per_split: DEFAULT_MIN_SEEDS_PER_SPLIT,
        }
    }

    /// Thread count from the environment: the `WHYQ_THREADS` variable when
    /// set, otherwise [`std::thread::available_parallelism`]. A malformed
    /// `WHYQ_THREADS` value is rejected **loudly**: a warning naming the
    /// bad value is printed to stderr (once — the lookup is memoized) and
    /// the hardware default is used, instead of the misconfiguration
    /// silently passing as "unset". `WHYQ_THREADS=1` (or a single-core
    /// machine) disables parallel execution engine-wide. The lookup is
    /// performed once per process and memoized — hot loops calling
    /// `find_par()` (whose default options come from here) pay no
    /// repeated env reads.
    pub fn from_env() -> Self {
        static ENV_THREADS: OnceLock<usize> = OnceLock::new();
        let threads = *ENV_THREADS.get_or_init(|| {
            let fallback =
                || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            match std::env::var("WHYQ_THREADS") {
                Ok(raw) => parse_threads(&raw).unwrap_or_else(|| {
                    eprintln!(
                        "whyq-session: ignoring malformed WHYQ_THREADS={raw:?} \
                         (expected a positive integer); using {} worker(s)",
                        fallback()
                    );
                    fallback()
                }),
                Err(_) => fallback(),
            }
            .max(1)
        });
        ParallelOpts {
            threads,
            min_seeds_per_split: DEFAULT_MIN_SEEDS_PER_SPLIT,
        }
    }

    /// Override the split floor (builder style).
    pub fn min_seeds_per_split(mut self, min: usize) -> Self {
        self.min_seeds_per_split = min;
        self
    }

    /// Effective worker count (`0` is treated as 1).
    pub fn effective_threads(&self) -> usize {
        self.threads.max(1)
    }
}

impl Default for ParallelOpts {
    /// The environment-derived configuration — see [`ParallelOpts::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

/// Parse a `WHYQ_THREADS` value: a non-negative integer (surrounding
/// whitespace tolerated; `0` keeps its documented "treated as 1"
/// meaning). `None` marks the value malformed.
fn parse_threads(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok()
}

/// A dependency-free scoped-thread task pool bound to a [`ParallelOpts`].
///
/// Every batch call spawns up to `threads` scoped workers that pull task
/// indices off a shared atomic counter and write results into per-task
/// slots; the scope joins before returning, so borrowed inputs (the
/// database, the query list) need no `'static` lifetimes and a panicking
/// task propagates to the caller instead of being lost. With `threads <=
/// 1` (or a single task) every batch runs inline on the calling thread —
/// serial fallback is the absence of the pool, not a special mode.
///
/// Spawn-per-batch is a deliberate trade: a persistent pool over borrowed
/// data would need `'static` task plumbing (or unsafe), while a scoped
/// spawn costs on the order of ten microseconds per worker. Batches
/// should therefore carry at least ~100µs of work each — which is what
/// `min_seeds_per_split` enforces for seed sharding, and why the relax
/// loop's sibling batcher only fans out when at least two uncached
/// probes are pending.
///
/// See the [module docs](self) for the `Database: Send + Sync` contract
/// and determinism guarantees.
#[derive(Debug, Clone, Default)]
pub struct Executor {
    opts: ParallelOpts,
    /// Optional external cancellation: workers poll this token between
    /// tasks and stop pulling new ones once it flips (tasks already
    /// running finish — or stop on their own via the budget inside their
    /// `MatchOptions`, when they share it with the token).
    cancel: Option<CancelToken>,
}

impl Executor {
    /// Executor over explicit options.
    pub fn new(opts: ParallelOpts) -> Self {
        Executor { opts, cancel: None }
    }

    /// Executor configured from the environment ([`ParallelOpts::from_env`]).
    pub fn from_env() -> Self {
        Executor::new(ParallelOpts::from_env())
    }

    /// Strictly serial executor (all batches run inline).
    pub fn serial() -> Self {
        Executor::new(ParallelOpts::serial())
    }

    /// Attach an external cancel token (builder style): batches observe a
    /// cancel between tasks and fail with
    /// [`WhyqError::Interrupted`]`(Cancelled)`.
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// True once the attached cancel token (if any) has flipped.
    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// The configured options.
    pub fn opts(&self) -> &ParallelOpts {
        &self.opts
    }

    /// Effective worker count.
    pub fn threads(&self) -> usize {
        self.opts.effective_threads()
    }

    /// True when batches may actually run on more than one thread.
    pub fn is_parallel(&self) -> bool {
        self.threads() > 1
    }

    /// Run `f` over every item of `items`, returning results in item
    /// order. Tasks are pure functions of their item — `f` is shared by
    /// reference across workers, so it must be `Sync` and should not
    /// depend on execution order.
    ///
    /// A panicking task does not take the process (or the caller) down:
    /// the unwind is caught at the unit boundary and surfaced as
    /// [`WhyqError::WorkerPanicked`] — first error wins, remaining units
    /// are abandoned. An attached cancel token likewise fails the batch
    /// with [`WhyqError::Interrupted`].
    pub fn map_batch<I, T, F>(&self, items: &[I], f: F) -> Result<Vec<T>, WhyqError>
    where
        I: Sync,
        T: Send + Sync,
        F: Fn(&I) -> T + Sync,
    {
        self.dispatch(items.len(), || (), |(), i| f(&items[i]))
    }

    /// Count every query of `queries` against `db` under `opts`, returning
    /// per-query results in query order. Each worker owns one session, so
    /// sibling probes share the database's plan cache and indexes but
    /// never a scratch arena — the batched form of the relax loop's and
    /// the MCS algorithms' cardinality probes.
    ///
    /// Errors are **per-slot**: a query that fails — including by
    /// panicking its worker, caught and reported as
    /// [`WhyqError::WorkerPanicked`] in that slot — never poisons its
    /// siblings' results. Only an executor-level stop (an attached cancel
    /// token, a panic in worker setup) fails whole slots wholesale.
    pub fn count_batch(
        &self,
        db: &Database,
        queries: &[&PatternQuery],
        opts: MatchOptions,
    ) -> Vec<Result<u64, WhyqError>> {
        let dispatched = self.dispatch(
            queries.len(),
            || db.session(),
            |session, i| {
                // per-slot isolation: catch the unwind *inside* the task so
                // a panicking probe errors its own slot instead of aborting
                // the batch (the relax loop skips failed siblings)
                catch_unwind(AssertUnwindSafe(|| {
                    session.count_opts(queries[i], opts.clone())
                }))
                .unwrap_or_else(|payload| {
                    Err(WhyqError::WorkerPanicked {
                        message: panic_message(payload.as_ref()),
                    })
                })
            },
        );
        match dispatched {
            Ok(slots) => slots,
            // an executor-level stop has no per-slot results to salvage
            Err(e) => queries.iter().map(|_| Err(e.clone())).collect(),
        }
    }

    /// Enumerate every request of `requests` against `db`, returning
    /// per-request **governed** results in request order. Each worker owns
    /// one session, so same-signature requests share the database's plan
    /// cache — under any contention exactly one of them compiles the plan
    /// (the [`crate::cache::PlanSlot`] guarantee) and the rest execute the
    /// shared bytecode. This is the batched form a serving layer coalesces
    /// same-signature traffic through: each request still carries its own
    /// [`MatchOptions`] (its own [`whyq_matcher::Budget`], its own limit),
    /// so one slow client's deadline never governs its batch siblings.
    ///
    /// Errors are **per-slot**, exactly as in [`Executor::count_batch`]: a
    /// request that fails — including by panicking its worker, caught and
    /// reported as [`WhyqError::WorkerPanicked`] in that slot — never
    /// poisons its siblings' results. A budget that trips mid-search is
    /// *not* an error here: the slot holds the partial results tagged with
    /// their [`Termination`], the degraded-but-servable contract.
    pub fn find_batch(
        &self,
        db: &Database,
        requests: &[(&PatternQuery, MatchOptions)],
    ) -> Vec<Result<Governed<Vec<ResultGraph>>, WhyqError>> {
        let dispatched = self.dispatch(
            requests.len(),
            || db.session(),
            |session, i| {
                let (query, opts) = &requests[i];
                catch_unwind(AssertUnwindSafe(|| {
                    session.find_governed(query, opts.clone())
                }))
                .unwrap_or_else(|payload| {
                    Err(WhyqError::WorkerPanicked {
                        message: panic_message(payload.as_ref()),
                    })
                })
            },
        );
        match dispatched {
            Ok(slots) => slots,
            // an executor-level stop has no per-slot results to salvage
            Err(e) => requests.iter().map(|_| Err(e.clone())).collect(),
        }
    }

    /// Run `task(state, i)` for `i in 0..n` across the pool, where each
    /// worker initializes its own `state` once (e.g. a [`Session`]) and
    /// reuses it for every task it pulls. Results come back in task order.
    ///
    /// Robustness contract: every task (and every worker's `init`) runs
    /// under [`catch_unwind`], so a panic is confined to its work unit.
    /// The first failure — panic or cancel — is recorded, every worker
    /// stops pulling new tasks, and the batch returns `Err`; the shared
    /// [`Database`] and all other sessions stay untouched and usable
    /// (per-search scratch state is re-prepared from scratch on every
    /// search, so nothing leaks out of an abandoned unit).
    pub(crate) fn dispatch<S, T, Init, Task>(
        &self,
        n: usize,
        init: Init,
        task: Task,
    ) -> Result<Vec<T>, WhyqError>
    where
        T: Send + Sync,
        Init: Fn() -> S + Sync,
        Task: Fn(&mut S, usize) -> T + Sync,
    {
        if n == 0 {
            return Ok(Vec::new());
        }
        let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
        let first_error: OnceLock<WhyqError> = OnceLock::new();
        let stop = AtomicBool::new(false);
        let worker = |next: &AtomicUsize| {
            let mut state = match catch_unwind(AssertUnwindSafe(&init)) {
                Ok(state) => state,
                Err(payload) => {
                    let _ = first_error.set(WhyqError::WorkerPanicked {
                        message: panic_message(payload.as_ref()),
                    });
                    stop.store(true, Ordering::Release);
                    return;
                }
            };
            loop {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                if self.cancelled() {
                    let _ = first_error.set(WhyqError::Interrupted {
                        termination: Termination::Cancelled,
                    });
                    stop.store(true, Ordering::Release);
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                #[cfg(feature = "fault-inject")]
                let run = catch_unwind(AssertUnwindSafe(|| {
                    whyq_matcher::fault::maybe_panic_at_unit(i);
                    task(&mut state, i)
                }));
                #[cfg(not(feature = "fault-inject"))]
                let run = catch_unwind(AssertUnwindSafe(|| task(&mut state, i)));
                match run {
                    Ok(value) => {
                        let _ = slots[i].set(value);
                    }
                    Err(payload) => {
                        // first error wins; siblings see `stop` and quit.
                        // The worker's own state may be mid-search — drop
                        // it rather than reuse it.
                        let _ = first_error.set(WhyqError::WorkerPanicked {
                            message: panic_message(payload.as_ref()),
                        });
                        stop.store(true, Ordering::Release);
                        break;
                    }
                }
            }
        };
        let workers = self.threads().min(n);
        if workers <= 1 {
            let next = AtomicUsize::new(0);
            worker(&next);
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| worker(&next));
                }
            });
        }
        if let Some(e) = first_error.into_inner() {
            return Err(e);
        }
        slots
            .into_iter()
            .map(|s| {
                // no recorded error ⇒ every index was pulled and completed
                s.into_inner().ok_or(WhyqError::Interrupted {
                    termination: Termination::Cancelled,
                })
            })
            .collect()
    }
}

/// A worker-session batch runner used by `find_par`/`count_par`: runs
/// `task(&session, i)` for `i in 0..n` with one [`Session`] per worker.
/// Fails with the executor's first error — a worker panic or a cancel —
/// with the database left fully usable.
pub(crate) fn run_with_sessions<'db, T, Task>(
    exec: &Executor,
    db: &'db Database,
    n: usize,
    task: Task,
) -> Result<Vec<T>, WhyqError>
where
    T: Send + Sync,
    Task: Fn(&Session<'db>, usize) -> T + Sync,
{
    exec.dispatch(n, || db.session(), |session, i| task(session, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_batch_preserves_order() {
        for threads in [1usize, 2, 8] {
            let exec = Executor::new(ParallelOpts::with_threads(threads));
            let items: Vec<usize> = (0..100).collect();
            let out = exec.map_batch(&items, |&i| i * 2).unwrap();
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
        assert!(Executor::serial()
            .map_batch(&Vec::<u8>::new(), |_| 0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn parse_threads_accepts_integers_and_rejects_noise() {
        // well-formed: plain integers, surrounding whitespace, the
        // documented "0 treated as 1" value
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads("  16\n"), Some(16));
        assert_eq!(parse_threads("0"), Some(0));
        // malformed: empty, signs, fractions, words, embedded garbage
        for bad in ["", "  ", "-2", "2.5", "four", "8 cores", "0x10"] {
            assert_eq!(parse_threads(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn opts_floor_zero_threads_to_one() {
        let opts = ParallelOpts {
            threads: 0,
            min_seeds_per_split: 0,
        };
        let exec = Executor::new(opts);
        assert_eq!(exec.threads(), 1);
        assert!(!exec.is_parallel());
        assert_eq!(ParallelOpts::serial().effective_threads(), 1);
        assert!(ParallelOpts::from_env().effective_threads() >= 1);
    }
}
