//! Equivalence of the sibling-cache incremental path against full
//! re-execution.
//!
//! For randomized graph × query × modification sequences, every query in
//! the sibling family is executed two ways: through a default database
//! (sibling cache enabled — plans may be *derived* from a sibling's and
//! component results replayed from the cache) and through a database with
//! the sibling layer disabled (`sibling_cache_capacity(0)` — every
//! execution compiles and runs from scratch). Counts must agree exactly
//! (with and without limits — counts are enumeration-order independent),
//! unlimited enumerations must agree as canonical multisets (a derived
//! plan may enumerate in a different order than a fresh compile), and a
//! *replayed* execution must be bit-identical to the recomputed one it
//! replays. The same equivalences are checked through the 4-thread
//! `Executor` batch entry points (the `WHYQ_THREADS=4` configuration,
//! pinned explicitly via [`ParallelOpts::with_threads`]) and under
//! mid-run Budget trips: a tripped partial is a lower bound and is never
//! cached, so a complete re-run after a trip still matches the oracle.

use proptest::prelude::*;
use whyq_graph::{PropertyGraph, Value};
use whyq_matcher::{Budget, MatchOptions, ResultGraph, Termination};
use whyq_query::{
    DirectionSet, GraphMod, Interval, PatternQuery, Predicate, QVid, QueryEdge, QueryVertex, Target,
};
use whyq_session::{Database, DatabaseConfig, Executor, ParallelOpts};

fn build_graph(n: usize, types: &[u8], pairs: &[(u8, u8, bool)]) -> PropertyGraph {
    let names = ["red", "green", "blue"];
    let mut g = PropertyGraph::new();
    let vs: Vec<_> = (0..n)
        .map(|i| {
            g.add_vertex([
                (
                    "type",
                    Value::str(names[types[i % types.len()] as usize % 3]),
                ),
                ("rank", Value::Int((i % 3) as i64)),
            ])
        })
        .collect();
    for &(a, b, t) in pairs {
        g.add_edge(
            vs[a as usize % n],
            vs[b as usize % n],
            if t { "link" } else { "flow" },
            [],
        );
    }
    g
}

fn build_query(len: usize, types: &[u8], etypes: &[bool], undirected: bool) -> PatternQuery {
    let names = ["red", "green", "blue"];
    let mut q = PatternQuery::new();
    let mut prev: Option<QVid> = None;
    for i in 0..len {
        let preds = vec![
            Predicate::eq("type", names[types[i % types.len()] as usize % 3]),
            Predicate::eq("rank", (i % 3) as i64),
        ];
        let v = q.add_vertex(QueryVertex::with(preds));
        if let Some(p) = prev {
            let mut e = QueryEdge::typed(
                p,
                v,
                if etypes[i % etypes.len()] {
                    "link"
                } else {
                    "flow"
                },
            );
            if undirected {
                e.directions = DirectionSet::BOTH;
            }
            q.add_edge(e);
        }
        prev = Some(v);
    }
    q
}

/// The sibling family of `q`: `q` itself plus the cumulative application
/// of a modification sequence decoded from `(op, elem)` pairs. The decoded
/// operations deliberately mix the delta classes the cache distinguishes:
/// `ReplaceInterval` (a `SingleInterval` delta — the plan-derivation and
/// unit-invalidation fast path), predicate/edge/vertex removal (coarse
/// relaxations — component-signature reuse), and type widening.
fn sibling_family(q: &PatternQuery, mods: &[(u8, u8)]) -> Vec<PatternQuery> {
    let names = ["red", "green", "blue"];
    let mut family = vec![q.clone()];
    let mut cur = q.clone();
    for &(op, elem) in mods {
        let vids: Vec<QVid> = cur.vertex_ids().collect();
        let eids: Vec<_> = cur.edge_ids().collect();
        if vids.is_empty() {
            break;
        }
        let v = vids[elem as usize % vids.len()];
        let m = match op % 5 {
            // widen one vertex's type label to a different constant — the
            // one-OneOf-constant sibling shape
            0 => GraphMod::ReplaceInterval {
                target: Target::Vertex(v),
                attr: "type".into(),
                interval: Interval::eq(names[(elem as usize + 1) % 3]),
            },
            // widen to a disjunction (OneOf with several constants)
            1 => GraphMod::ReplaceInterval {
                target: Target::Vertex(v),
                attr: "rank".into(),
                interval: Interval::one_of([(elem % 3) as i64, ((elem + 1) % 3) as i64]),
            },
            2 => GraphMod::RemovePredicate {
                target: Target::Vertex(v),
                attr: if elem % 2 == 0 { "rank" } else { "type" }.into(),
            },
            3 if !eids.is_empty() => GraphMod::RemoveEdge(eids[elem as usize % eids.len()]),
            _ if vids.len() > 1 => GraphMod::RemoveVertex(v),
            _ => continue,
        };
        if m.apply(&mut cur).is_ok() {
            family.push(cur.clone());
        }
    }
    family
}

/// One match in canonical (order-insensitive) form.
type CanonicalMatch = (Vec<(u32, u32)>, Vec<(u32, u32)>);

fn canonical(results: &[ResultGraph]) -> Vec<CanonicalMatch> {
    let mut out: Vec<_> = results
        .iter()
        .map(|r| {
            (
                r.vertex_bindings()
                    .iter()
                    .map(|&(qv, d)| (qv.0, d.0))
                    .collect::<Vec<_>>(),
                r.edge_bindings()
                    .iter()
                    .map(|&(qe, d)| (qe.0, d.0))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    out.sort();
    out
}

fn open_pair(g: &PropertyGraph) -> (Database, Database) {
    let inc = Database::open(g.clone()).expect("open");
    let full = Database::open_with(
        g.clone(),
        DatabaseConfig::default().sibling_cache_capacity(0),
    )
    .expect("open");
    (inc, full)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serial equivalence over randomized sibling families: counts exact
    /// (limited and unlimited), unlimited find canonical-equal, replays
    /// bit-identical to the runs that populated them.
    #[test]
    fn incremental_equals_full_reexecution_serial(
        n in 2usize..7,
        vtypes in prop::collection::vec(0u8..3, 6),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..12),
        qlen in 1usize..4,
        qtypes in prop::collection::vec(0u8..3, 4),
        qetypes in prop::collection::vec(any::<bool>(), 4),
        undirected in any::<bool>(),
        mods in prop::collection::vec((any::<u8>(), any::<u8>()), 1..6),
        limit_raw in 0usize..6,
    ) {
        // 5 encodes "no limit" (the shim has no option strategy)
        let limit = (limit_raw < 5).then_some(limit_raw);
        let g = build_graph(n, &vtypes, &pairs);
        let base = build_query(qlen, &qtypes, &qetypes, undirected);
        let family = sibling_family(&base, &mods);
        let (inc, full) = open_pair(&g);
        let inc_session = inc.session();
        let full_session = full.session();

        for q in &family {
            let oracle_count = full_session.count_governed(q, MatchOptions::default()).unwrap();
            let oracle_rows = full_session.find_governed(q, MatchOptions::default()).unwrap();
            prop_assert_eq!(oracle_count.termination, Termination::Complete);

            // first incremental run (misses fill the cache) …
            let first = inc_session.find_governed(q, MatchOptions::default()).unwrap();
            let count = inc_session.count_governed(q, MatchOptions::default()).unwrap();
            prop_assert_eq!(count.value, oracle_count.value);
            prop_assert_eq!(count.termination, Termination::Complete);
            prop_assert_eq!(canonical(&first.value), canonical(&oracle_rows.value));

            // … and the replayed run must be bit-identical to it
            let replay = inc_session.find_governed(q, MatchOptions::default()).unwrap();
            prop_assert_eq!(&replay.value, &first.value);
            let recount = inc_session.count_governed(q, MatchOptions::default()).unwrap();
            prop_assert_eq!(recount.value, oracle_count.value);

            // limited counts are enumeration-order independent, so they
            // must agree across the two databases even for derived plans
            if let Some(l) = limit {
                let opts = MatchOptions::limited(l);
                let a = inc_session.count_governed(q, opts.clone()).unwrap();
                let b = full_session.count_governed(q, opts).unwrap();
                prop_assert_eq!(a.value, b.value);
                // limited rows: replays must be bit-identical within the
                // incremental database (same plan, same prefix)
                let opts = MatchOptions::limited(l);
                let r1 = inc_session.find_governed(q, opts.clone()).unwrap();
                let r2 = inc_session.find_governed(q, opts).unwrap();
                prop_assert_eq!(r1.value.len(), r2.value.len());
                prop_assert_eq!(&r1.value, &r2.value);
            }
        }
        // when any family member was satisfiable the cache participated:
        // its components were inserted on the first run and replayed after
        // (an all-unsatisfiable family never reaches the engine at all;
        // under WHYQ_NO_SIBLING_CACHE=1 the layer is off and the whole
        // suite exercises the plain path instead)
        let stats = inc.sibling_stats();
        let any_satisfiable = family
            .iter()
            .any(|q| !inc_session.prepare(q).unwrap().is_unsatisfiable());
        prop_assert!(
            !inc.sibling_cache_enabled()
                || !any_satisfiable
                || (stats.insertions > 0 && stats.hits > 0)
        );
    }

    /// The 4-thread executor path (the `WHYQ_THREADS=4` configuration):
    /// batched counts and governed finds over the whole sibling family
    /// agree with serial full re-execution.
    #[test]
    fn incremental_equals_full_reexecution_batched(
        n in 2usize..6,
        vtypes in prop::collection::vec(0u8..3, 6),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..10),
        qlen in 1usize..4,
        qtypes in prop::collection::vec(0u8..3, 4),
        qetypes in prop::collection::vec(any::<bool>(), 4),
        mods in prop::collection::vec((any::<u8>(), any::<u8>()), 1..5),
    ) {
        let g = build_graph(n, &vtypes, &pairs);
        let base = build_query(qlen, &qtypes, &qetypes, false);
        let family = sibling_family(&base, &mods);
        let refs: Vec<&PatternQuery> = family.iter().collect();
        let (inc, full) = open_pair(&g);
        let full_session = full.session();
        let executor = Executor::new(ParallelOpts::with_threads(4));

        let batched = executor.count_batch(&inc, &refs, MatchOptions::default());
        // run the batch twice: the second pass replays what the first
        // inserted, across worker sessions (the cache is database state)
        let replayed = executor.count_batch(&inc, &refs, MatchOptions::default());
        for ((q, got), again) in family.iter().zip(&batched).zip(&replayed) {
            let oracle = full_session.count_governed(q, MatchOptions::default()).unwrap();
            prop_assert_eq!(got.as_ref().unwrap(), &oracle.value);
            prop_assert_eq!(again.as_ref().unwrap(), &oracle.value);
        }

        let requests: Vec<(&PatternQuery, MatchOptions)> = family
            .iter()
            .map(|q| (q, MatchOptions::default()))
            .collect();
        for (q, slot) in family.iter().zip(executor.find_batch(&inc, &requests)) {
            let governed = slot.unwrap();
            prop_assert_eq!(governed.termination, Termination::Complete);
            let oracle = full_session.find_governed(q, MatchOptions::default()).unwrap();
            prop_assert_eq!(canonical(&governed.value), canonical(&oracle.value));
        }
    }

    /// Mid-run Budget trips: a tripped governed count is a lower bound of
    /// the true count, the tripped partial is never inserted into the
    /// sibling cache, and a subsequent unconstrained run — which would
    /// replay any poisoned entry — still equals full re-execution.
    #[test]
    fn tripped_partials_are_lower_bounds_and_never_cached(
        n in 3usize..7,
        vtypes in prop::collection::vec(0u8..3, 6),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..12),
        qlen in 1usize..4,
        qtypes in prop::collection::vec(0u8..3, 4),
        qetypes in prop::collection::vec(any::<bool>(), 4),
        mods in prop::collection::vec((any::<u8>(), any::<u8>()), 1..5),
        steps in 1u64..40,
    ) {
        let g = build_graph(n, &vtypes, &pairs);
        let base = build_query(qlen, &qtypes, &qetypes, false);
        let family = sibling_family(&base, &mods);
        let (inc, full) = open_pair(&g);
        let inc_session = inc.session();
        let full_session = full.session();

        for q in &family {
            let oracle = full_session.count_governed(q, MatchOptions::default()).unwrap();

            let before = inc.sibling_stats().insertions;
            let starved = MatchOptions::default().with_budget(Budget::steps(steps));
            let tripped = inc_session.count_governed(q, starved).unwrap();
            prop_assert!(tripped.value <= oracle.value);
            if tripped.termination != Termination::Complete {
                // only units that ran to completion before the trip may
                // have been cached; re-running unconstrained must not
                // replay any truncated component count
                let after = inc_session.count_governed(q, MatchOptions::default()).unwrap();
                prop_assert_eq!(after.value, oracle.value);
                prop_assert_eq!(after.termination, Termination::Complete);
            } else {
                prop_assert_eq!(tripped.value, oracle.value);
                let _ = before;
            }

            // the row twin under the same starvation
            let starved = MatchOptions::default().with_budget(Budget::steps(steps));
            let rows = inc_session.find_governed(q, starved).unwrap();
            let oracle_rows = full_session.find_governed(q, MatchOptions::default()).unwrap();
            if rows.termination != Termination::Complete {
                let complete = inc_session.find_governed(q, MatchOptions::default()).unwrap();
                prop_assert_eq!(canonical(&complete.value), canonical(&oracle_rows.value));
            } else {
                prop_assert_eq!(canonical(&rows.value), canonical(&oracle_rows.value));
            }
        }
    }
}

/// An immediately-tripped budget never touches the cache at all: the
/// incremental path refuses up front exactly like the engine, and no
/// partial (here: empty) unit result is inserted.
#[test]
fn pre_tripped_budget_inserts_nothing() {
    let g = build_graph(4, &[0, 1, 2], &[(0, 1, true), (1, 2, false)]);
    let db = Database::open(g).expect("open");
    let session = db.session();
    let q = build_query(2, &[0, 1], &[true], false);

    let dead = Budget::steps(1);
    dead.trip(Termination::BudgetExhausted);
    let governed = session
        .count_governed(&q, MatchOptions::default().with_budget(dead))
        .unwrap();
    assert_ne!(governed.termination, Termination::Complete);
    assert_eq!(governed.value, 0);
    assert_eq!(db.sibling_stats().insertions, 0, "{:?}", db.sibling_stats());
}

/// `clear_sibling_cache` bumps the generation: stale entries stop
/// replaying (counted as invalidations) and results stay correct.
#[test]
fn generation_bump_invalidates_replays() {
    let g = build_graph(5, &[0, 1, 2], &[(0, 1, true), (1, 2, true), (2, 3, false)]);
    let db = Database::open(g).expect("open");
    let session = db.session();
    let q = build_query(2, &[0, 1], &[true], false);

    if !db.sibling_cache_enabled() {
        return; // WHYQ_NO_SIBLING_CACHE=1: nothing to invalidate
    }
    let first = session.count_governed(&q, MatchOptions::default()).unwrap();
    let replayed = session.count_governed(&q, MatchOptions::default()).unwrap();
    assert_eq!(first.value, replayed.value);
    let hits = db.sibling_stats().hits;
    assert!(hits > 0, "{:?}", db.sibling_stats());

    db.clear_sibling_cache();
    let invalidations = db.sibling_stats().invalidations;
    let again = session.count_governed(&q, MatchOptions::default()).unwrap();
    assert_eq!(again.value, first.value);
    assert!(
        db.sibling_stats().invalidations > invalidations,
        "stale-generation entries must be dropped and counted: {:?}",
        db.sibling_stats()
    );
}
