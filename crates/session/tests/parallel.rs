//! Property tests of parallel evaluation: `find_par` equals `find` as an
//! unordered multiset and `count_par` equals `count` — on randomized
//! graphs and queries (multi-component and empty-component cases
//! included), for thread counts {1, 2, 8} and adversarial
//! `min_seeds_per_split` values (0 forces maximal sharding, a huge floor
//! forces the serial fallback).

use proptest::prelude::*;
use std::collections::BTreeMap;
use whyq_graph::{PropertyGraph, Value};
use whyq_matcher::{MatchOptions, ResultGraph};
use whyq_query::{DirectionSet, PatternQuery, Predicate, QueryEdge, QueryVertex};
use whyq_session::{Database, ParallelOpts};

fn build_graph(n: usize, types: &[u8], pairs: &[(u8, u8, bool)]) -> PropertyGraph {
    let names = ["red", "green", "blue"];
    let mut g = PropertyGraph::new();
    let vs: Vec<_> = (0..n)
        .map(|i| {
            g.add_vertex([(
                "type",
                Value::str(names[types[i % types.len()] as usize % 3]),
            )])
        })
        .collect();
    for &(a, b, t) in pairs {
        g.add_edge(
            vs[a as usize % n],
            vs[b as usize % n],
            if t { "link" } else { "flow" },
            [],
        );
    }
    g
}

/// A random query shape: a path of `len` vertices with typed edges, plus
/// an optional disconnected extra vertex (a second component, possibly
/// matching nothing) and optional direction-agnostic edges.
fn build_query(
    len: usize,
    types: &[u8],
    etypes: &[bool],
    undirected: bool,
    extra_component: bool,
    extra_type: &str,
) -> PatternQuery {
    let names = ["red", "green", "blue"];
    let mut q = PatternQuery::new();
    let mut prev = None;
    for i in 0..len {
        let v = q.add_vertex(QueryVertex::with([Predicate::eq(
            "type",
            names[types[i % types.len()] as usize % 3],
        )]));
        if let Some(p) = prev {
            let mut e = QueryEdge::typed(
                p,
                v,
                if etypes[i % etypes.len()] {
                    "link"
                } else {
                    "flow"
                },
            );
            if undirected {
                e.directions = DirectionSet::BOTH;
            }
            q.add_edge(e);
        }
        prev = Some(v);
    }
    if extra_component {
        q.add_vertex(QueryVertex::with([Predicate::eq("type", extra_type)]));
    }
    q
}

fn multiset(results: &[ResultGraph]) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for r in results {
        *m.entry(format!("{r:?}")).or_insert(0) += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every thread count and split floor, `find_par` returns the
    /// multiset `find` returns and `count_par` the number `count` returns.
    #[test]
    fn parallel_equals_serial(
        n in 2usize..7,
        vtypes in prop::collection::vec(0u8..3, 6),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..12),
        qlen in 1usize..4,
        qtypes in prop::collection::vec(0u8..3, 4),
        qetypes in prop::collection::vec(any::<bool>(), 4),
        undirected in any::<bool>(),
        extra_component in any::<bool>(),
        // "purple" is absent from every graph: an unsatisfiable second
        // component (the empty-component edge case)
        extra_matches in any::<bool>(),
        injective in any::<bool>(),
    ) {
        let g = build_graph(n, &vtypes, &pairs);
        let extra_type = if extra_matches { "red" } else { "purple" };
        let q = build_query(qlen, &qtypes, &qetypes, undirected, extra_component, extra_type);
        let opts = MatchOptions { injective, limit: None, ..Default::default() };

        let db = Database::open(g).expect("open");
        let session = db.session();
        let prepared = session.prepare(&q).expect("valid query");
        let serial = prepared.find_opts(opts.clone()).expect("find");
        let serial_count = prepared.count_opts(opts.clone()).expect("count");

        for threads in [1usize, 2, 8] {
            for min_split in [0usize, 1, 3, 1_000_000] {
                let par = ParallelOpts::with_threads(threads).min_seeds_per_split(min_split);
                let found = prepared.find_par_opts(opts.clone(), &par).expect("find_par");
                prop_assert_eq!(
                    multiset(&found),
                    multiset(&serial),
                    "find_par multiset (threads={}, min_split={})", threads, min_split
                );
                let counted = prepared.count_par_opts(opts.clone(), &par).expect("count_par");
                prop_assert_eq!(
                    counted, serial_count,
                    "count_par (threads={}, min_split={})", threads, min_split
                );
            }
        }
    }

    /// Under a result cap, a parallel count still reports
    /// `min(C(Q), limit)` and a parallel find returns exactly
    /// `min(C(Q), limit)` results, each of which is a genuine serial
    /// result (which ones survive the cap is unspecified).
    #[test]
    fn parallel_limits_agree_with_serial(
        n in 2usize..6,
        vtypes in prop::collection::vec(0u8..3, 6),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..10),
        qlen in 1usize..4,
        qtypes in prop::collection::vec(0u8..3, 4),
        qetypes in prop::collection::vec(any::<bool>(), 4),
        extra_component in any::<bool>(),
        limit in 0usize..6,
    ) {
        let g = build_graph(n, &vtypes, &pairs);
        let q = build_query(qlen, &qtypes, &qetypes, false, extra_component, "red");
        let opts = MatchOptions { injective: true, limit: Some(limit), ..Default::default() };

        let db = Database::open(g).expect("open");
        let session = db.session();
        let prepared = session.prepare(&q).expect("valid query");
        let all = prepared.find().expect("find");
        let serial_count = prepared.count_opts(opts.clone()).expect("count");
        let universe = multiset(&all);

        for threads in [2usize, 8] {
            let par = ParallelOpts::with_threads(threads).min_seeds_per_split(1);
            prop_assert_eq!(
                prepared.count_par_opts(opts.clone(), &par).expect("count_par"),
                serial_count
            );
            let found = prepared.find_par_opts(opts.clone(), &par).expect("find_par");
            prop_assert_eq!(found.len(), all.len().min(limit));
            for (key, count) in multiset(&found) {
                prop_assert!(
                    universe.get(&key).is_some_and(|&c| c >= count),
                    "capped parallel results are a sub-multiset of the serial results"
                );
            }
        }
    }
}
