//! Concurrency stress tests of the shared plan cache: N threads × M
//! sessions hammering `prepare()` on overlapping signatures must keep the
//! hit/miss/eviction counters consistent and compile every distinct
//! signature exactly once (the [`whyq_session::cache::PlanSlot`]
//! compile-once guarantee), while every prepare still answers correctly.

use std::sync::atomic::{AtomicU64, Ordering};
use whyq_graph::{PropertyGraph, Value};
use whyq_query::{PatternQuery, Predicate, QueryBuilder};
use whyq_session::{Database, DatabaseConfig};

const THREADS: usize = 8;
const SESSIONS_PER_THREAD: usize = 4;
const ROUNDS: usize = 25;

fn social() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let mut people = Vec::new();
    for i in 0..12 {
        people.push(g.add_vertex([("type", Value::str("person")), ("age", Value::Int(20 + i))]));
    }
    let city = g.add_vertex([("type", Value::str("city"))]);
    for (i, &p) in people.iter().enumerate() {
        g.add_edge(p, city, "livesIn", []);
        g.add_edge(p, people[(i + 1) % people.len()], "knows", []);
    }
    g
}

/// Overlapping workload: every thread prepares every one of these, so
/// each signature is contended by all threads at once.
fn workload() -> Vec<(PatternQuery, u64)> {
    let people = QueryBuilder::new("people")
        .vertex("p", [Predicate::eq("type", "person")])
        .build();
    let pairs = QueryBuilder::new("pairs")
        .vertex("a", [Predicate::eq("type", "person")])
        .vertex("b", [Predicate::eq("type", "person")])
        .edge("a", "b", "knows")
        .build();
    let triangle = QueryBuilder::new("co-located")
        .vertex("a", [Predicate::eq("type", "person")])
        .vertex("c", [Predicate::eq("type", "city")])
        .edge("a", "c", "livesIn")
        .build();
    let young = QueryBuilder::new("young")
        .vertex(
            "p",
            [
                Predicate::eq("type", "person"),
                Predicate::between("age", 20.0, 24.0),
            ],
        )
        .build();
    let none = QueryBuilder::new("robots")
        .vertex("r", [Predicate::eq("type", "robot")])
        .build();
    let disconnected = QueryBuilder::new("product")
        .vertex("p", [Predicate::eq("type", "person")])
        .vertex("c", [Predicate::eq("type", "city")])
        .build();
    vec![
        (people, 12),
        (pairs, 12),
        (triangle, 12),
        (young, 5),
        (none, 0),
        (disconnected, 12),
    ]
}

#[test]
fn contended_prepares_compile_once_per_signature() {
    let db = Database::open_with(
        social(),
        // capacity far above the distinct-signature count: no evictions,
        // so the compile-once invariant is observable exactly
        DatabaseConfig::default().plan_cache_capacity(64),
    )
    .expect("open");
    let queries = workload();
    let prepares = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let db = &db;
            let queries = &queries;
            let prepares = &prepares;
            scope.spawn(move || {
                // several sessions per thread, rotated per round — session
                // handles are cheap and share the one cache
                let sessions: Vec<_> = (0..SESSIONS_PER_THREAD).map(|_| db.session()).collect();
                for round in 0..ROUNDS {
                    let session = &sessions[round % sessions.len()];
                    for qi in 0..queries.len() {
                        // stagger start order per thread so different
                        // signatures race on different threads
                        let (q, expected) = &queries[(qi + t) % queries.len()];
                        let prepared = session.prepare(q).expect("valid query");
                        prepares.fetch_add(1, Ordering::Relaxed);
                        assert_eq!(prepared.count().expect("count"), *expected, "{:?}", q.name);
                    }
                }
            });
        }
    });

    let stats = db.cache_stats();
    let total = prepares.load(Ordering::Relaxed);
    let distinct = queries.len() as u64;
    assert_eq!(total, (THREADS * ROUNDS * queries.len()) as u64);
    // every probe is either a hit or a miss — no prepare is lost
    assert_eq!(stats.hits + stats.misses, total, "{stats:?}");
    // a miss can only happen while a signature's slot has never been
    // resident; with no evictions that is once per distinct signature and
    // per racing thread at worst — and the *compiles* are exactly one per
    // signature no matter how many threads raced the reservation
    assert_eq!(stats.evictions, 0, "{stats:?}");
    assert_eq!(stats.len, queries.len(), "{stats:?}");
    assert_eq!(stats.misses, distinct, "one reservation per signature");
    // the "robots" query is statically unsatisfiable: its slot is filled
    // with the analyzer's verdict and never compiled at all
    assert_eq!(
        db.compile_count(),
        distinct - 1,
        "no signature compiled twice under contention"
    );
}

#[test]
fn contended_prepares_with_evictions_stay_consistent() {
    // capacity 2 with 6 signatures: constant eviction churn under
    // contention. Counters must still balance and every answer must still
    // be correct; compile-once holds per *resident* slot generation.
    let db = Database::open_with(social(), DatabaseConfig::default().plan_cache_capacity(2))
        .expect("open");
    // drop the statically-unsatisfiable query: it fills its slot without
    // compiling, which would break the exact compiles-per-miss accounting
    // below (its short-circuit behavior is covered by the other test and
    // the session unit tests); 5 signatures over capacity 2 still churn
    let queries: Vec<_> = workload().into_iter().filter(|(_, n)| *n > 0).collect();
    let prepares = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let db = &db;
            let queries = &queries;
            let prepares = &prepares;
            scope.spawn(move || {
                let session = db.session();
                for _ in 0..ROUNDS {
                    for (q, expected) in queries {
                        let prepared = session.prepare(q).expect("valid query");
                        prepares.fetch_add(1, Ordering::Relaxed);
                        assert_eq!(prepared.count().expect("count"), *expected, "{:?}", q.name);
                    }
                }
            });
        }
    });

    let stats = db.cache_stats();
    let total = prepares.load(Ordering::Relaxed);
    assert_eq!(stats.hits + stats.misses, total, "{stats:?}");
    assert_eq!(stats.len, 2, "capacity bound respected: {stats:?}");
    // every miss inserts (capacity > 0), so inserts beyond the resident
    // len must have evicted exactly that many entries
    assert_eq!(
        stats.evictions,
        stats.misses - stats.len as u64,
        "{stats:?}"
    );
    // each reservation compiles its fresh slot exactly once
    assert_eq!(db.compile_count(), stats.misses, "{stats:?}");
}
