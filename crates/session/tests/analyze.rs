//! Oracle-equivalence property suite for the static query analyzer.
//!
//! Every rewrite the analyzer applies (predicate merging, subsumption,
//! disjunction dedup, dictionary pruning of constants and edge types,
//! canonical ordering) must preserve the query's result set **on the graph
//! analyzed against** — verified here against the brute-force
//! `whyq_matcher::reference` oracle on randomized graph/query pairs whose
//! predicate pool deliberately covers every rule, including queries the
//! analyzer proves unsatisfiable (where the oracle must confirm the
//! original query is indeed empty). The session path is checked too: the
//! prepared-query answer over the analyzer-simplified plan equals the
//! oracle's answer for the caller's original query.

use proptest::prelude::*;
use whyq_graph::{PropertyGraph, Value};
use whyq_matcher::reference::find_matches_naive;
use whyq_matcher::MatchOptions;
use whyq_query::{
    analyze_against, Interval, PatternQuery, Predicate, QVid, QueryEdge, QueryVertex,
};
use whyq_session::Database;

const COLORS: [&str; 3] = ["red", "green", "blue"];

fn build_graph(n: usize, types: &[u8], ages: &[u8], pairs: &[(u8, u8, bool)]) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let vs: Vec<_> = (0..n)
        .map(|i| {
            g.add_vertex([
                (
                    "type",
                    Value::str(COLORS[types[i % types.len()] as usize % 3]),
                ),
                ("age", Value::Int(i64::from(ages[i % ages.len()] % 50))),
            ])
        })
        .collect();
    for &(a, b, t) in pairs {
        g.add_edge(
            vs[a as usize % n],
            vs[b as usize % n],
            if t { "link" } else { "flow" },
            [],
        );
    }
    g
}

/// One predicate from a pool covering every analyzer rewrite rule:
/// mergeable/contradictory ranges, subsumed duplicates, duplicated
/// disjunction values, constants and attributes the graph has never seen,
/// empty and NaN-bounded intervals.
fn predicate(kind: u8, x: u8) -> Vec<Predicate> {
    let lo = f64::from(x % 50);
    match kind % 10 {
        0 => vec![Predicate::eq("type", COLORS[x as usize % 3])],
        // duplicate equality: subsumption
        1 => {
            let p = Predicate::eq("type", COLORS[x as usize % 3]);
            vec![p.clone(), p]
        }
        // overlapping ranges: merged into a tighter interval
        2 => vec![
            Predicate::at_least("age", lo),
            Predicate::at_most("age", lo + 10.0),
            Predicate::between("age", 0.0, 45.0),
        ],
        // contradictory conjunction: provably empty
        3 => vec![
            Predicate::at_least("age", lo + 11.0),
            Predicate::at_most("age", lo),
        ],
        // unknown string constant: fully pruned disjunction
        4 => vec![Predicate::eq("type", "purple")],
        // partially unknown disjunction: pruned with a warning
        5 => vec![Predicate::one_of(
            "type",
            ["purple", COLORS[x as usize % 3]],
        )],
        // duplicated disjunction values: deduped
        6 => vec![Predicate::one_of(
            "type",
            [COLORS[x as usize % 3], COLORS[x as usize % 3]],
        )],
        // attribute the graph has never seen
        7 => vec![Predicate::eq("ghost", 1)],
        // empty disjunction: empty interval
        8 => vec![Predicate {
            attr: "age".into(),
            interval: Interval::OneOf(vec![]),
        }],
        // NaN bound: admits nothing
        _ => vec![Predicate::at_least("age", f64::NAN)],
    }
}

fn build_query(kinds: &[(u8, u8)], etypes: &[u8], undirected: bool) -> PatternQuery {
    let mut q = PatternQuery::new();
    let mut prev: Option<QVid> = None;
    for (i, &(kind, x)) in kinds.iter().enumerate() {
        let v = q.add_vertex(QueryVertex::with(predicate(kind, x)));
        if let Some(p) = prev {
            let e = etypes[i % etypes.len()] % 4;
            let mut edge = match e {
                0 => QueryEdge::typed(p, v, "link"),
                1 => QueryEdge::typed(p, v, "flow"),
                // unknown type in the disjunction: pruned (warning) or, if
                // alone, an unsatisfiability proof
                2 => QueryEdge::typed(p, v, "teleport"),
                _ => {
                    let mut e = QueryEdge::typed(p, v, "link");
                    e.types.push("teleport".into());
                    e.types.push("link".into()); // duplicate: deduped
                    e
                }
            };
            if undirected {
                edge.directions = whyq_query::DirectionSet::BOTH;
            }
            q.add_edge(edge);
        }
        prev = Some(v);
    }
    q
}

/// Multiset comparison of result-graph lists (no `Ord` on `ResultGraph`:
/// compare canonical debug renderings).
fn canon(results: Vec<whyq_matcher::ResultGraph>) -> Vec<String> {
    let mut out: Vec<String> = results.into_iter().map(|r| format!("{r:?}")).collect();
    out.sort();
    out
}

fn assert_equivalent(g: &PropertyGraph, q: &PatternQuery) {
    let analysis = analyze_against(q, g);
    let original = canon(find_matches_naive(g, q, MatchOptions::default()));
    let simplified = canon(find_matches_naive(
        g,
        &analysis.query,
        MatchOptions::default(),
    ));
    assert_eq!(
        original, simplified,
        "analyzer rewrite changed the result set\noriginal query: {q:?}\nsimplified: {:?}\nreport: {:?}",
        analysis.query, analysis.report
    );
    if analysis.report.is_unsatisfiable() {
        assert!(
            original.is_empty(),
            "analyzer claimed unsatisfiable but the oracle found matches\nquery: {q:?}\nreport: {:?}",
            analysis.report
        );
        assert!(
            !analysis.report.conflict_set().is_empty(),
            "unsatisfiable verdict must name its conflicts"
        );
    }
    // the session path serves the caller's original query through the
    // plan compiled from the simplified one
    let db = Database::open(g.clone()).expect("open");
    let session = db.session();
    let prepared = session.prepare(q).expect("prepare");
    assert_eq!(
        canon(prepared.find().expect("find")),
        original,
        "prepared-query answer diverged from the oracle"
    );
    assert_eq!(
        prepared.is_unsatisfiable() && prepared.report().is_unsatisfiable(),
        analysis.report.is_unsatisfiable()
    );
    if analysis.report.is_unsatisfiable() {
        assert_eq!(
            db.compile_count(),
            0,
            "unsatisfiable prepare must not compile"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn analyzer_rewrites_preserve_results(
        n in 1usize..5,
        types in prop::collection::vec(0u8..6, 1..5),
        ages in prop::collection::vec(0u8..255, 1..5),
        pairs in prop::collection::vec((0u8..8, 0u8..8, any::<bool>()), 0..7),
        kinds in prop::collection::vec((0u8..10, 0u8..255), 1..4),
        etypes in prop::collection::vec(0u8..4, 1..4),
        undirected in any::<bool>(),
    ) {
        let g = build_graph(n, &types, &ages, &pairs);
        let q = build_query(&kinds, &etypes, undirected);
        assert_equivalent(&g, &q);
    }
}

/// Deterministic coverage of each rewrite rule on a fixed graph — the
/// random sweep above covers combinations; this pins every rule
/// individually so a regression names the broken rule.
#[test]
fn every_rewrite_rule_is_equivalence_checked() {
    let g = build_graph(
        4,
        &[0, 1, 2, 0],
        &[10, 20, 30, 40],
        &[(0, 1, true), (1, 2, false), (2, 3, true)],
    );
    for kind in 0u8..10 {
        for x in [0u8, 7, 49] {
            let q = build_query(&[(kind, x)], &[0], false);
            assert_equivalent(&g, &q);
        }
        // the same predicate pool behind an edge of each type shape
        for etype in 0u8..4 {
            let q = build_query(&[(kind, 3), (0, 1)], &[etype], etype % 2 == 0);
            assert_equivalent(&g, &q);
        }
    }
}
