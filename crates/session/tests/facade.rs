//! Integration tests of the facade: plan-cache behavior (hits, misses,
//! signature discrimination, invalidation on reopen) and the equivalence
//! of the lazy `stream()` with the eager `find()` and the naive oracle on
//! randomized queries.

use proptest::prelude::*;
use std::collections::BTreeMap;
use whyq_graph::{PropertyGraph, Value};
use whyq_matcher::{find_matches_naive, MatchOptions, ResultGraph};
use whyq_query::{DirectionSet, PatternQuery, Predicate, QueryBuilder, QueryEdge, QueryVertex};
use whyq_session::{Database, DatabaseConfig};

fn social() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let a = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Anna"))]);
    let b = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Bert"))]);
    let c = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Cleo"))]);
    let city = g.add_vertex([("type", Value::str("city"))]);
    g.add_edge(a, b, "knows", []);
    g.add_edge(b, c, "knows", []);
    g.add_edge(a, city, "livesIn", []);
    g.add_edge(b, city, "livesIn", []);
    g
}

fn pair_query() -> PatternQuery {
    QueryBuilder::new("pair")
        .vertex("p1", [Predicate::eq("type", "person")])
        .vertex("p2", [Predicate::eq("type", "person")])
        .edge("p1", "p2", "knows")
        .build()
}

// ---------------------------------------------------------------------
// plan cache
// ---------------------------------------------------------------------

#[test]
fn repeat_prepares_hit_the_cache() {
    let db = Database::open(social()).unwrap();
    let session = db.session();
    let q = pair_query();
    for _ in 0..5 {
        assert_eq!(session.prepare(&q).unwrap().count().unwrap(), 2);
    }
    let stats = session.cache_stats();
    assert_eq!(stats.misses, 1, "compiled exactly once");
    assert_eq!(stats.hits, 4);
    assert_eq!(stats.len, 1);
}

#[test]
fn predicate_order_is_signature_invariant() {
    // two builds of "the same" query with permuted predicate lists share
    // one cache entry
    let db = Database::open(social()).unwrap();
    let session = db.session();
    let mut q1 = PatternQuery::new();
    q1.add_vertex(QueryVertex::with([
        Predicate::eq("type", "person"),
        Predicate::eq("name", "Anna"),
    ]));
    let mut q2 = PatternQuery::new();
    q2.add_vertex(QueryVertex::with([
        Predicate::eq("name", "Anna"),
        Predicate::eq("type", "person"),
    ]));
    assert_eq!(q1.signature(), q2.signature());
    assert_eq!(session.prepare(&q1).unwrap().count().unwrap(), 1);
    assert_eq!(session.prepare(&q2).unwrap().count().unwrap(), 1);
    let stats = session.cache_stats();
    assert_eq!((stats.misses, stats.hits), (1, 1));
}

#[test]
fn relabeled_isomorphic_queries_do_not_collide() {
    // q2 is isomorphic to q1 but its elements carry different ids (a
    // tombstoned vertex shifts every id by one). The signatures must
    // differ — a cached plan binds concrete id slots — and each entry
    // must keep answering correctly for its own query.
    let db = Database::open(social()).unwrap();
    let session = db.session();
    let q1 = pair_query();

    let mut q2 = PatternQuery::new();
    let dummy = q2.add_vertex(QueryVertex::any());
    let p1 = q2.add_vertex(QueryVertex::with([Predicate::eq("type", "person")]));
    let p2 = q2.add_vertex(QueryVertex::with([Predicate::eq("type", "person")]));
    q2.add_edge(QueryEdge::typed(p1, p2, "knows"));
    q2.remove_vertex(dummy);

    assert_ne!(q1.signature(), q2.signature());
    let pr1 = session.prepare(&q1).unwrap();
    let pr2 = session.prepare(&q2).unwrap();
    assert_eq!(pr1.count().unwrap(), 2);
    assert_eq!(pr2.count().unwrap(), 2);
    // interleave executions — each prepared query keeps its own plan
    assert_eq!(pr1.find().unwrap().len(), 2);
    assert_eq!(pr2.find().unwrap().len(), 2);
    let stats = session.cache_stats();
    assert_eq!(stats.misses, 2, "two distinct cache entries");
    assert_eq!(stats.len, 2);
}

#[test]
fn signature_hash_is_stable_and_collision_checked() {
    let q = pair_query();
    assert_eq!(q.signature_hash(), pair_query().signature_hash());
    let other = QueryBuilder::new("other")
        .vertex("c", [Predicate::eq("type", "city")])
        .build();
    assert_ne!(q.signature_hash(), other.signature_hash());
}

#[test]
fn reopening_a_database_starts_from_a_cold_valid_cache() {
    let db = Database::open(social()).unwrap();
    let session = db.session();
    let q = pair_query();
    assert_eq!(session.prepare(&q).unwrap().count().unwrap(), 2);
    assert_eq!(db.cache_stats().misses, 1);

    // close, mutate the graph (a new person + edge), reopen
    let mut g = db.close();
    let a = g.add_vertex([("type", Value::str("person"))]);
    let b = g.add_vertex([("type", Value::str("person"))]);
    g.add_edge(a, b, "knows", []);
    let db2 = Database::open(g).unwrap();

    // the new database has an empty cache — nothing stale survives
    let cold = db2.cache_stats();
    assert_eq!((cold.hits, cold.misses, cold.len), (0, 0, 0));
    // and recompilation sees the new data (3 knows pairs now)
    let session2 = db2.session();
    assert_eq!(session2.prepare(&q).unwrap().count().unwrap(), 3);
    assert_eq!(db2.cache_stats().misses, 1);
}

#[test]
fn lru_capacity_bounds_the_cache() {
    let db =
        Database::open_with(social(), DatabaseConfig::default().plan_cache_capacity(2)).unwrap();
    let session = db.session();
    for name in ["Anna", "Bert", "Cleo", "Anna"] {
        let q = QueryBuilder::new("n")
            .vertex("p", [Predicate::eq("name", name)])
            .build();
        session.prepare(&q).unwrap();
    }
    let stats = db.cache_stats();
    assert!(stats.len <= 2);
    assert!(stats.evictions >= 1);
    // "Anna" was evicted before its re-prepare: 4 misses, 0 hits
    assert_eq!((stats.misses, stats.hits), (4, 0));
}

// ---------------------------------------------------------------------
// stream() ≡ find() ≡ naive oracle on randomized queries
// ---------------------------------------------------------------------

fn build_graph(n: usize, types: &[u8], pairs: &[(u8, u8, bool)]) -> PropertyGraph {
    let names = ["red", "green", "blue"];
    let mut g = PropertyGraph::new();
    let vs: Vec<_> = (0..n)
        .map(|i| {
            g.add_vertex([(
                "type",
                Value::str(names[types[i % types.len()] as usize % 3]),
            )])
        })
        .collect();
    for &(a, b, t) in pairs {
        g.add_edge(
            vs[a as usize % n],
            vs[b as usize % n],
            if t { "link" } else { "flow" },
            [],
        );
    }
    g
}

/// A random query shape: a path of `len` vertices with typed edges, plus
/// an optional disconnected extra vertex (exercising the stream's lazy
/// cartesian combination) and optional direction-agnostic edges.
fn build_query(
    len: usize,
    types: &[u8],
    etypes: &[bool],
    undirected: bool,
    extra_component: bool,
) -> PatternQuery {
    let names = ["red", "green", "blue"];
    let mut q = PatternQuery::new();
    let mut prev = None;
    for i in 0..len {
        let v = q.add_vertex(QueryVertex::with([Predicate::eq(
            "type",
            names[types[i % types.len()] as usize % 3],
        )]));
        if let Some(p) = prev {
            let mut e = QueryEdge::typed(
                p,
                v,
                if etypes[i % etypes.len()] {
                    "link"
                } else {
                    "flow"
                },
            );
            if undirected {
                e.directions = DirectionSet::BOTH;
            }
            q.add_edge(e);
        }
        prev = Some(v);
    }
    if extra_component {
        q.add_vertex(QueryVertex::with([Predicate::eq(
            "type",
            names[types[0] as usize % 3],
        )]));
    }
    q
}

fn multiset(results: &[ResultGraph]) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for r in results {
        *m.entry(format!("{r:?}")).or_insert(0) += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `stream()` yields exactly the multiset `find()` returns, which in
    /// turn is the multiset the naive oracle enumerates.
    #[test]
    fn stream_find_and_oracle_agree(
        n in 2usize..6,
        vtypes in prop::collection::vec(0u8..3, 6),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..10),
        qlen in 1usize..4,
        qtypes in prop::collection::vec(0u8..3, 4),
        qetypes in prop::collection::vec(any::<bool>(), 4),
        undirected in any::<bool>(),
        extra_component in any::<bool>(),
        injective in any::<bool>(),
    ) {
        let g = build_graph(n, &vtypes, &pairs);
        let q = build_query(qlen, &qtypes, &qetypes, undirected, extra_component);
        let opts = MatchOptions { injective, limit: None, ..Default::default() };
        let naive = find_matches_naive(&g, &q, opts.clone());

        let db = Database::open(g).expect("open");
        let session = db.session();
        let prepared = session.prepare(&q).expect("valid query");
        let found = prepared.find_opts(opts.clone()).expect("find");
        let streamed: Vec<ResultGraph> = prepared.stream_opts(opts.clone()).collect();

        prop_assert_eq!(multiset(&streamed), multiset(&found), "stream vs find");
        prop_assert_eq!(multiset(&found), multiset(&naive), "find vs naive oracle");
        prop_assert_eq!(prepared.count_opts(opts).expect("count"), found.len() as u64);
    }

    /// A limited stream is a prefix of the unlimited eager enumeration.
    #[test]
    fn limited_stream_is_a_prefix_of_find(
        n in 2usize..6,
        vtypes in prop::collection::vec(0u8..3, 6),
        pairs in prop::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..10),
        qlen in 1usize..4,
        qtypes in prop::collection::vec(0u8..3, 4),
        qetypes in prop::collection::vec(any::<bool>(), 4),
        limit in 0usize..5,
    ) {
        let g = build_graph(n, &vtypes, &pairs);
        let q = build_query(qlen, &qtypes, &qetypes, false, false);
        let db = Database::open(g).expect("open");
        let session = db.session();
        let prepared = session.prepare(&q).expect("valid query");
        let all = prepared.find().expect("find");
        let some: Vec<ResultGraph> =
            prepared.stream_opts(MatchOptions::limited(limit)).collect();
        prop_assert_eq!(some.len(), all.len().min(limit));
        prop_assert_eq!(&some[..], &all[..some.len()]);
    }
}
