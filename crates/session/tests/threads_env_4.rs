//! Parallel facade under `WHYQ_THREADS=4`: a sharded pool from the environment.
//!
//! `ParallelOpts::from_env` memoizes the `WHYQ_THREADS` lookup per
//! process, so each env value gets its own test binary (this one sets the
//! variable before any facade call can trigger the memoization).

use whyq_graph::{PropertyGraph, Value};
use whyq_query::{Predicate, QueryBuilder};
use whyq_session::{Database, ParallelOpts};

fn social() -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let mut people = Vec::new();
    for i in 0..12 {
        people.push(g.add_vertex([("type", Value::str("person")), ("rank", Value::Int(i % 3))]));
    }
    for i in 0..12 {
        for j in 0..12 {
            if i != j && (i + j) % 3 == 0 {
                g.add_edge(people[i], people[j], "knows", []);
            }
        }
    }
    g
}

#[test]
fn env_thread_count_preserves_results() {
    std::env::set_var("WHYQ_THREADS", "4");
    let g = social();
    let db = Database::open(g).expect("open");
    let session = db.session();
    let q = QueryBuilder::new("pairs")
        .vertex("a", [Predicate::eq("type", "person")])
        .vertex("b", [Predicate::eq("type", "person")])
        .edge("a", "b", "knows")
        .build();
    let prepared = session.prepare(&q).expect("valid");
    let serial = prepared.find().expect("find");
    let count = prepared.count().expect("count");

    // the env-configured pool (memoized from WHYQ_THREADS=4) must agree
    // with the serial engine as a multiset / exact count
    let par = ParallelOpts::from_env().min_seeds_per_split(1);
    let mut found = prepared
        .find_par_opts(Default::default(), &par)
        .expect("find_par");
    let mut expect = serial.clone();
    let key = |r: &whyq_matcher::ResultGraph| format!("{r:?}");
    found.sort_by_key(key);
    expect.sort_by_key(key);
    assert_eq!(found, expect);
    assert_eq!(
        prepared
            .count_par_opts(Default::default(), &par)
            .expect("count_par"),
        count
    );
}
