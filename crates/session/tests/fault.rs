//! Fault-injection robustness tests (compiled only with
//! `--features fault-inject`).
//!
//! Each test arms a deterministic [`FaultPlan`] — panic a specific work
//! unit, delay a specific seed binding, force budget exhaustion — and
//! asserts the execution stack's robustness contract: a panicking worker
//! surfaces [`WhyqError::WorkerPanicked`] without taking the [`Database`]
//! down, a cancelled search returns in bounded time, and a database that
//! survived a fault answers subsequent queries identically to a fresh
//! instance. The [`arm`] guard serializes these tests process-wide, so
//! they compose with any `--test-threads` setting.
#![cfg(feature = "fault-inject")]

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use whyq_graph::{PropertyGraph, Value};
use whyq_matcher::fault::{arm, FaultPlan};
use whyq_matcher::{MatchOptions, ResultGraph};
use whyq_query::{PatternQuery, Predicate, QueryBuilder};
use whyq_session::{Budget, CancelToken, Database, Executor, ParallelOpts, Termination, WhyqError};

/// Complete directed graph on `n` same-typed vertices: every ordered pair
/// carries a "link" edge, so a directed path query of length `k` has
/// `n!/(n-k)!` injective matches — combinatorial work on a tiny graph.
fn clique(n: usize) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let vs: Vec<_> = (0..n)
        .map(|_| g.add_vertex([("type", Value::str("red"))]))
        .collect();
    for &a in &vs {
        for &b in &vs {
            if a != b {
                g.add_edge(a, b, "link", []);
            }
        }
    }
    g
}

fn path_query(len: usize) -> PatternQuery {
    let mut b = QueryBuilder::new("path");
    for i in 0..len {
        b = b.vertex(&format!("v{i}"), [Predicate::eq("type", "red")]);
    }
    for i in 1..len {
        b = b.edge(&format!("v{}", i - 1), &format!("v{i}"), "link");
    }
    b.build()
}

fn multiset(results: &[ResultGraph]) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for r in results {
        *m.entry(format!("{r:?}")).or_insert(0) += 1;
    }
    m
}

/// The cross-check suite the acceptance criterion speaks of: every answer
/// a database gives after surviving a fault must equal the answer a fresh
/// instance over the same graph gives.
fn assert_answers_like_fresh(survivor: &Database, queries: &[PatternQuery]) {
    let fresh = Database::open(survivor.graph().clone()).expect("fresh open");
    let par = ParallelOpts::with_threads(4).min_seeds_per_split(1);
    for q in queries {
        let s = survivor.session();
        let f = fresh.session();
        assert_eq!(s.count(q).unwrap(), f.count(q).unwrap(), "count diverged");
        assert_eq!(
            multiset(&s.find(q).unwrap()),
            multiset(&f.find(q).unwrap()),
            "find diverged"
        );
        let sp = s.prepare(q).unwrap();
        let fp = f.prepare(q).unwrap();
        assert_eq!(
            sp.count_par_opts(MatchOptions::default(), &par).unwrap(),
            fp.count().unwrap(),
            "parallel count diverged"
        );
        assert_eq!(
            multiset(&sp.find_par_opts(MatchOptions::default(), &par).unwrap()),
            multiset(&fp.find().unwrap()),
            "parallel find diverged"
        );
    }
}

// ---------------------------------------------------------------------
// panic isolation
// ---------------------------------------------------------------------

#[test]
fn injected_worker_panic_surfaces_and_database_survives() {
    let db = Database::open(clique(12)).unwrap();
    let session = db.session();
    let q = path_query(3);
    let prepared = session.prepare(&q).unwrap();
    let par = ParallelOpts::with_threads(4).min_seeds_per_split(1);

    {
        let _guard = arm(FaultPlan {
            panic_at_unit: Some(1),
            ..FaultPlan::default()
        });
        let err = prepared
            .find_par_opts(MatchOptions::default(), &par)
            .expect_err("the panicking unit must fail the batch");
        match err {
            WhyqError::WorkerPanicked { message } => {
                assert!(
                    message.contains("fault-inject"),
                    "panic payload should survive the unwind: {message}"
                );
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    // The same database — same plan cache, same prepared query — now
    // answers exactly like a fresh instance, serial and parallel.
    assert_eq!(prepared.count().unwrap(), 12 * 11 * 10);
    assert_answers_like_fresh(&db, &[q, path_query(2)]);
    // the plan cache was not poisoned by the unwinding worker
    let stats = db.cache_stats();
    assert!(stats.len >= 1, "cache still readable after panic");
}

#[test]
fn injected_panic_in_count_par_is_isolated_too() {
    let db = Database::open(clique(10)).unwrap();
    let q = path_query(3);
    let par = ParallelOpts::with_threads(4).min_seeds_per_split(1);
    {
        let _guard = arm(FaultPlan {
            panic_at_unit: Some(0),
            ..FaultPlan::default()
        });
        let err = db
            .session()
            .prepare(&q)
            .unwrap()
            .count_par_opts(MatchOptions::default(), &par)
            .expect_err("panicked count must error");
        assert!(matches!(err, WhyqError::WorkerPanicked { .. }));
    }
    assert_eq!(
        db.session()
            .prepare(&q)
            .unwrap()
            .count_par_opts(MatchOptions::default(), &par)
            .unwrap(),
        10 * 9 * 8
    );
}

#[test]
fn executor_stays_usable_after_injected_panic() {
    // Both the serial inline path and the scoped-thread pool route every
    // unit through the same catch_unwind boundary.
    for exec in [
        Executor::serial(),
        Executor::new(ParallelOpts::with_threads(4)),
    ] {
        let items: Vec<usize> = (0..16).collect();
        {
            let _guard = arm(FaultPlan {
                panic_at_unit: Some(3),
                ..FaultPlan::default()
            });
            let err = exec
                .map_batch(&items, |&i| i + 1)
                .expect_err("unit 3 panics");
            assert!(matches!(err, WhyqError::WorkerPanicked { .. }));
        }
        // disarmed: the very same executor finishes the batch correctly
        let out = exec.map_batch(&items, |&i| i + 1).unwrap();
        assert_eq!(out, (1..=16).collect::<Vec<_>>());
    }
}

#[test]
fn count_batch_fails_all_slots_on_executor_level_panic() {
    let db = Database::open(clique(6)).unwrap();
    let q2 = path_query(2);
    let q3 = path_query(3);
    let queries = [&q2, &q3, &q2];
    let exec = Executor::new(ParallelOpts::with_threads(2));
    {
        let _guard = arm(FaultPlan {
            panic_at_unit: Some(0),
            ..FaultPlan::default()
        });
        // the injected panic fires at the dispatch boundary (outside the
        // per-slot isolation), so it is an executor-level stop: every
        // slot reports the same first error
        let slots = exec.count_batch(&db, &queries, MatchOptions::default());
        assert_eq!(slots.len(), 3);
        for slot in &slots {
            assert!(matches!(slot, Err(WhyqError::WorkerPanicked { .. })));
        }
    }
    let slots = exec.count_batch(&db, &queries, MatchOptions::default());
    assert_eq!(
        slots.into_iter().map(Result::unwrap).collect::<Vec<_>>(),
        [6 * 5, 6 * 5 * 4, 6 * 5]
    );
}

// Acceptance criterion, property form: whatever (small random) graph the
// database holds, surviving an injected worker panic never changes any
// subsequent answer relative to a fresh instance.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn post_panic_database_is_indistinguishable_from_fresh(
        n in 6usize..12,
        len in 2usize..4,
        unit in 0usize..4,
    ) {
        let db = Database::open(clique(n)).unwrap();
        let q = path_query(len);
        let par = ParallelOpts::with_threads(4).min_seeds_per_split(1);
        {
            let _guard = arm(FaultPlan {
                panic_at_unit: Some(unit),
                ..FaultPlan::default()
            });
            let res = db
                .session()
                .prepare(&q)
                .unwrap()
                .find_par_opts(MatchOptions::default(), &par);
            prop_assert!(matches!(
                res,
                Err(WhyqError::WorkerPanicked { .. })
            ));
        }
        assert_answers_like_fresh(&db, &[q, path_query(2)]);
    }
}

// ---------------------------------------------------------------------
// cancellation under an injected delay
// ---------------------------------------------------------------------

#[test]
fn cancellation_during_injected_delay_returns_in_bounded_time() {
    let db = Database::open(clique(30)).unwrap();
    let session = db.session();
    let q = path_query(3); // 30*29*28 = 24_360 matches ≫ one check interval
    let token = CancelToken::new();
    let opts = MatchOptions::governed(Budget::cancelled_by(&token));

    let _guard = arm(FaultPlan {
        // the very first seed binding stalls long enough for the
        // cancellation below to land mid-search
        delay_at_seed: Some((0, Duration::from_millis(500))),
        ..FaultPlan::default()
    });
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            token.cancel();
        })
    };
    let start = Instant::now();
    let governed = session.find_governed(&q, opts).unwrap();
    let elapsed = start.elapsed();
    canceller.join().unwrap();

    assert_eq!(governed.termination, Termination::Cancelled);
    assert!(
        governed.value.len() < 24_360,
        "cancelled run must not have enumerated everything"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "cancelled search took {elapsed:?}"
    );
}

// ---------------------------------------------------------------------
// forced budget exhaustion
// ---------------------------------------------------------------------

#[test]
fn forced_exhaustion_degrades_gracefully_and_clears_on_disarm() {
    let db = Database::open(clique(8)).unwrap();
    let session = db.session();
    let q = path_query(3);
    // any governed budget consults the exhaustion hook — generous limits
    // that would never trip on their own
    let opts = MatchOptions::governed(Budget::steps(u64::MAX / 2));
    {
        let _guard = arm(FaultPlan {
            exhaust_after_charges: Some(0),
            ..FaultPlan::default()
        });
        let governed = session.count_governed(&q, opts.clone()).unwrap();
        assert_eq!(governed.termination, Termination::BudgetExhausted);
        assert!(
            governed.value < 8 * 7 * 6,
            "forced trip yields a partial count"
        );
    }
    // a fresh budget after disarm runs to completion
    let governed = session
        .count_governed(&q, MatchOptions::governed(Budget::steps(u64::MAX / 2)))
        .unwrap();
    assert_eq!(governed.termination, Termination::Complete);
    assert_eq!(governed.value, 8 * 7 * 6);
}
