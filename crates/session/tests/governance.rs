//! Governance tests that need no fault injection: deadlines, step
//! budgets and cancel tokens observed through the public facade, plus
//! the session-robustness contracts around dropped streams and reuse
//! after an error.

use proptest::prelude::*;
use std::time::{Duration, Instant};
use whyq_graph::{PropertyGraph, Value};
use whyq_matcher::MatchOptions;
use whyq_query::{PatternQuery, Predicate, QueryBuilder};
use whyq_session::{Budget, CancelToken, Database, Termination, WhyqError};

/// Complete directed graph on `n` same-typed vertices — a directed path
/// query of length `k` has `n!/(n-k)!` injective matches, so small `n`
/// already buys combinatorial search work.
fn clique(n: usize) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let vs: Vec<_> = (0..n)
        .map(|_| g.add_vertex([("type", Value::str("red"))]))
        .collect();
    for &a in &vs {
        for &b in &vs {
            if a != b {
                g.add_edge(a, b, "link", []);
            }
        }
    }
    g
}

fn path_query(len: usize) -> PatternQuery {
    let mut b = QueryBuilder::new("path");
    for i in 0..len {
        b = b.vertex(&format!("v{i}"), [Predicate::eq("type", "red")]);
    }
    for i in 1..len {
        b = b.edge(&format!("v{}", i - 1), &format!("v{i}"), "link");
    }
    b.build()
}

// ---------------------------------------------------------------------
// deadlines
// ---------------------------------------------------------------------

#[test]
fn zero_deadline_interrupts_the_plain_entry_points() {
    let db = Database::open(clique(6)).unwrap();
    let session = db.session();
    let q = path_query(2);
    let opts = MatchOptions::governed(Budget::deadline(Duration::ZERO));
    // the value-or-error entry points refuse a partial answer
    match session.find_opts(&q, opts.clone()) {
        Err(WhyqError::Interrupted { termination }) => {
            assert_eq!(termination, Termination::DeadlineExceeded);
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
    assert!(matches!(
        session.count_opts(&q, MatchOptions::governed(Budget::deadline(Duration::ZERO))),
        Err(WhyqError::Interrupted {
            termination: Termination::DeadlineExceeded
        })
    ));
}

/// Acceptance criterion: a pathological query under a 10 ms deadline
/// comes back tagged `DeadlineExceeded` in well under a second, carrying
/// whatever prefix of the answer it had time for.
#[test]
fn ten_ms_deadline_on_pathological_query_returns_fast() {
    // 60^4-ish injective path embeddings — far more than 10 ms of work
    let db = Database::open(clique(60)).unwrap();
    let session = db.session();
    let q = path_query(4);
    let opts = MatchOptions::governed(Budget::deadline(Duration::from_millis(10)));
    let start = Instant::now();
    let governed = session.find_governed(&q, opts).unwrap();
    let elapsed = start.elapsed();
    assert_eq!(governed.termination, Termination::DeadlineExceeded);
    assert!(
        elapsed < Duration::from_secs(1),
        "deadline overshot: {elapsed:?}"
    );
}

// ---------------------------------------------------------------------
// cancellation
// ---------------------------------------------------------------------

#[test]
fn pre_cancelled_token_refuses_the_search_up_front() {
    let db = Database::open(clique(8)).unwrap();
    let session = db.session();
    let token = CancelToken::new();
    token.cancel();
    let governed = session
        .find_governed(
            &path_query(3),
            MatchOptions::governed(Budget::cancelled_by(&token)),
        )
        .unwrap();
    assert_eq!(governed.termination, Termination::Cancelled);
    assert!(governed.value.is_empty());
    assert!(!governed.is_complete());
}

#[test]
fn cancel_token_is_shared_across_budget_clones() {
    let token = CancelToken::new();
    let budget = Budget::cancelled_by(&token);
    let clone = budget.clone();
    assert_eq!(budget.poll(), Ok(()));
    token.cancel();
    assert!(clone.poll().is_err());
    // the trip is sticky and shared
    assert_eq!(budget.termination(), Termination::Cancelled);
}

// ---------------------------------------------------------------------
// step budgets: partial results are a prefix of the serial answer
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn step_budget_results_are_a_prefix_of_the_full_run(
        n in 4usize..10,
        len in 2usize..4,
        steps in 1u64..20_000,
    ) {
        let db = Database::open(clique(n)).unwrap();
        let session = db.session();
        let q = path_query(len);
        let full = session.find(&q).unwrap();
        let governed = session
            .find_governed(&q, MatchOptions::governed(Budget::steps(steps)))
            .unwrap();
        // a connected query's governed enumeration is literally a prefix
        // of the serial enumeration: the DFS stops, it never reorders
        prop_assert!(governed.value.len() <= full.len());
        for (got, expected) in governed.value.iter().zip(&full) {
            prop_assert_eq!(format!("{got:?}"), format!("{expected:?}"));
        }
        // and the tag tells the two cases apart truthfully
        if governed.is_complete() {
            prop_assert_eq!(governed.value.len(), full.len());
        } else {
            prop_assert_eq!(governed.termination, Termination::BudgetExhausted);
        }
    }
}

// ---------------------------------------------------------------------
// stream dropped mid-iteration; session reuse after an error
// ---------------------------------------------------------------------

#[test]
fn stream_dropped_mid_iteration_leaves_the_session_intact() {
    // big enough that the search spans several 1024-tick check intervals,
    // so a 1-step budget is guaranteed to trip mid-stream
    let db = Database::open(clique(16)).unwrap();
    let session = db.session();
    let q = path_query(3);
    let expected = session.count(&q).unwrap();
    {
        let prepared = session.prepare(&q).unwrap();
        let mut stream = prepared.stream();
        // consume a couple of results, then drop the suspended search
        assert!(stream.next().is_some());
        assert!(stream.next().is_some());
    }
    {
        // a budget-tripped stream dropped mid-flight is no different
        let prepared = session.prepare(&q).unwrap();
        let mut stream = prepared.stream_opts(MatchOptions::governed(Budget::steps(1)));
        while stream.next().is_some() {}
        assert_eq!(stream.termination(), Termination::BudgetExhausted);
    }
    // the session (and the shared plan cache) answer as before
    assert_eq!(session.count(&q).unwrap(), expected);
    assert_eq!(session.find(&q).unwrap().len() as u64, expected);
}

#[test]
fn session_stays_usable_after_interrupted_and_invalid_queries() {
    let db = Database::open(clique(8)).unwrap();
    let session = db.session();
    let q = path_query(2);
    let expected = session.count(&q).unwrap();
    let stats_before = session.cache_stats();

    // error 1: a governed run interrupted by a zero deadline
    assert!(session
        .find_opts(&q, MatchOptions::governed(Budget::deadline(Duration::ZERO)))
        .is_err());
    // error 2: a query that fails validation (edge admitting no direction)
    let mut invalid = PatternQuery::new();
    let v = invalid.add_vertex(whyq_query::QueryVertex::with([Predicate::eq(
        "type", "red",
    )]));
    let w = invalid.add_vertex(whyq_query::QueryVertex::with([Predicate::eq(
        "type", "red",
    )]));
    let mut e = whyq_query::QueryEdge::typed(v, w, "link");
    e.directions = whyq_query::DirectionSet {
        forward: false,
        backward: false,
    };
    invalid.add_edge(e);
    assert!(matches!(
        session.prepare(&invalid),
        Err(WhyqError::InvalidQuery { .. })
    ));

    // the same session keeps answering, and the cache counters moved in
    // an orderly fashion (no poisoned lock, no wedged entry)
    assert_eq!(session.count(&q).unwrap(), expected);
    let stats_after = session.cache_stats();
    assert!(stats_after.hits > stats_before.hits);
    assert_eq!(
        session.find(&q).unwrap().len() as u64,
        expected,
        "enumeration unaffected by earlier errors"
    );
}
