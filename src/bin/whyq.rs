//! `whyq` — the why-query command line.
//!
//! ```text
//! whyq generate <ldbc|dbpedia> [--scale N] [--seed S] [--out FILE]
//! whyq stats    <GRAPH>
//! whyq match    <GRAPH> <PATTERN> [--limit N]
//! whyq why      <GRAPH> <PATTERN> [--at-least N] [--at-most N] [--between LO HI]
//! whyq client   <ADDR> (<PATTERN> [--slo CLASS] | --stats | --shutdown)
//! ```
//!
//! Graphs use the text format of `whyq_graph::io`; patterns use the
//! `whyq_query::parser` syntax, e.g.
//! `'(p:person {name: "Anna"})-[:knows]->(q:person)'`. The `client`
//! subcommand speaks the `whyqd` wire protocol (`docs/wire-protocol.md`)
//! and exits nonzero on any protocol or transport error.

use std::process::ExitCode;
use whyquery::core::engine::WhyEngine;
use whyquery::core::problem::CardinalityGoal;
use whyquery::datagen::{dbpedia_graph, ldbc_graph, DbpediaConfig, LdbcConfig};
use whyquery::graph::{io, PropertyGraph};
use whyquery::matcher::MatchOptions;
use whyquery::query::{parse_query, PatternQuery};
use whyquery::session::Database;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("whyq: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  whyq generate <ldbc|dbpedia> [--scale N] [--seed S] [--out FILE]");
            eprintln!("  whyq stats    <GRAPH>");
            eprintln!("  whyq match    <GRAPH> <PATTERN> [--limit N]");
            eprintln!(
                "  whyq why      <GRAPH> <PATTERN> [--at-least N] [--at-most N] [--between LO HI]"
            );
            eprintln!("  whyq client   <ADDR> (<PATTERN> [--slo CLASS] | --stats | --shutdown)");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("match") => do_match(&args[1..]),
        Some("why") => why(&args[1..]),
        Some("client") => client(&args[1..]),
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("missing command".into()),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: {s:?}"))
}

fn generate(args: &[String]) -> Result<(), String> {
    let kind = args.first().ok_or("generate needs <ldbc|dbpedia>")?;
    let seed: u64 = match flag_value(args, "--seed") {
        Some(s) => parse_num(s, "seed")?,
        None => 42,
    };
    let g = match kind.as_str() {
        "ldbc" => {
            let persons: usize = match flag_value(args, "--scale") {
                Some(s) => parse_num(s, "scale")?,
                None => 300,
            };
            ldbc_graph(LdbcConfig { persons, seed })
        }
        "dbpedia" => {
            let entities: usize = match flag_value(args, "--scale") {
                Some(s) => parse_num(s, "scale")?,
                None => 2000,
            };
            dbpedia_graph(DbpediaConfig { entities, seed })
        }
        other => return Err(format!("unknown generator {other:?}")),
    };
    let text = io::write_graph(&g);
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("writing {path:?}: {e}"))?;
            eprintln!(
                "wrote {} vertices / {} edges to {path}",
                g.num_vertices(),
                g.num_edges()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn load_graph(path: &str) -> Result<PropertyGraph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
    io::read_graph(&text).map_err(|e| format!("parsing {path:?}: {e}"))
}

fn load_pattern(text: &str) -> Result<PatternQuery, String> {
    parse_query(text).map_err(|e| format!("pattern: {e}"))
}

fn stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("stats needs <GRAPH>")?;
    let g = load_graph(path)?;
    println!("vertices: {}", g.num_vertices());
    println!("edges:    {}", g.num_edges());
    let d = whyquery::graph::stats::degree_summary(&g);
    println!(
        "degree:   min {} / mean {:.1} / max {}",
        d.min, d.mean, d.max
    );
    println!("\nvertex types:");
    for (ty, c) in whyquery::graph::stats::vertex_attr_histogram(&g, "type") {
        println!("  {ty:<24} {c}");
    }
    println!("\nedge types:");
    for (ty, c) in whyquery::graph::stats::edge_type_histogram(&g) {
        println!("  {ty:<24} {c}");
    }
    Ok(())
}

fn do_match(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("match needs <GRAPH>")?;
    let pattern = args.get(1).ok_or("match needs <PATTERN>")?;
    let limit: usize = match flag_value(args, "--limit") {
        Some(s) => parse_num(s, "limit")?,
        None => 10,
    };
    let db = Database::open(load_graph(path)?).map_err(|e| e.to_string())?;
    let session = db.session();
    let q = load_pattern(pattern)?;
    let prepared = session.prepare(&q).map_err(|e| e.to_string())?;
    // stream lazily: a small --limit never enumerates the full result set
    let results: Vec<_> = prepared.stream_opts(MatchOptions::limited(limit)).collect();
    println!("{} match(es) (showing up to {limit}):", results.len());
    for (i, r) in results.iter().enumerate() {
        let parts: Vec<String> = r
            .vertex_bindings()
            .iter()
            .map(|(qv, dv)| format!("{qv}={dv}"))
            .collect();
        println!("  #{:<3} {}", i + 1, parts.join("  "));
    }
    Ok(())
}

fn client(args: &[String]) -> Result<(), String> {
    use whyquery::server::client::Client;
    let addr = args.first().ok_or("client needs <ADDR>")?;
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| format!("connecting to {addr}: {e}"))?;
    if args.iter().any(|a| a == "--stats") {
        let stats = client.stats().map_err(|e| e.to_string())?;
        for (key, value) in stats.fields() {
            println!("{key}={value}");
        }
        return Ok(());
    }
    if args.iter().any(|a| a == "--shutdown") {
        let detail = client.shutdown_server().map_err(|e| e.to_string())?;
        println!("server {detail}");
        return Ok(());
    }
    let pattern = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or("client needs <PATTERN> (or --stats / --shutdown)")?;
    let reply = client
        .query(pattern, flag_value(args, "--slo"))
        .map_err(|e| e.to_string())?;
    let capped = if reply.capped { " (capped)" } else { "" };
    println!(
        "{} row(s), termination {}{capped}:",
        reply.rows.len(),
        reply.termination
    );
    for (i, row) in reply.rows.iter().enumerate() {
        println!("  #{:<3} {row}", i + 1);
    }
    Ok(())
}

fn why(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("why needs <GRAPH>")?;
    let pattern = args.get(1).ok_or("why needs <PATTERN>")?;
    let goal = if let Some(s) = flag_value(args, "--at-least") {
        CardinalityGoal::AtLeast(parse_num(s, "threshold")?)
    } else if let Some(s) = flag_value(args, "--at-most") {
        CardinalityGoal::AtMost(parse_num(s, "threshold")?)
    } else if let Some(i) = args.iter().position(|a| a == "--between") {
        let lo = parse_num(args.get(i + 1).ok_or("--between needs LO HI")?, "lo")?;
        let hi = parse_num(args.get(i + 2).ok_or("--between needs LO HI")?, "hi")?;
        CardinalityGoal::Between(lo, hi)
    } else {
        CardinalityGoal::NonEmpty
    };

    let db = Database::open(load_graph(path)?).map_err(|e| e.to_string())?;
    let q = load_pattern(pattern)?;
    let engine = WhyEngine::new(&db);
    let d = engine.diagnose(&q, goal).map_err(|e| e.to_string())?;
    println!("cardinality: {}", d.cardinality);
    println!("problem:     {}", d.problem);
    if let Some(sub) = &d.subgraph {
        println!("\nsubgraph-based explanation:");
        println!(
            "  largest conforming subquery: {} vertices, {} edges ({} results)",
            sub.mcs.num_vertices(),
            sub.mcs.num_edges(),
            sub.mcs_cardinality
        );
        println!("  {}", sub.differential);
        if let Some(e) = sub.crossing_edge {
            println!("  bound crossed at query edge {e}");
        }
    }
    if let Some(rw) = &d.rewrite {
        println!("\nmodification-based explanation:");
        for m in &rw.mods {
            println!("  * {m}");
        }
        println!(
            "  rewritten query delivers {} result(s), syntactic distance {:.3}",
            rw.cardinality, rw.syntactic_distance
        );
    }
    Ok(())
}
