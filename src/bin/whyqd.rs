//! `whyqd` — the why-query network server.
//!
//! ```text
//! whyqd [--addr HOST:PORT] (--graph FILE | --generate <ldbc|dbpedia> [--scale N] [--seed S])
//!       [--threads N] [--queue-depth N] [--batch-window-us U]
//!       [--max-rows N] [--drain-ms D]
//! ```
//!
//! Serves the length-prefixed wire protocol of `docs/wire-protocol.md`
//! (`HELLO`, `QUERY`/`PREPARE`/`EXEC`, `CANCEL`, `STATS`, `SHUTDOWN`)
//! over one shared, sealed database. Prints the bound address on stdout
//! once listening — scripts (and CI) parse that line — and runs until a
//! client sends `SHUTDOWN`, then drains in-flight queries and exits.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use whyquery::datagen::{dbpedia_graph, ldbc_graph, DbpediaConfig, LdbcConfig};
use whyquery::graph::{io, PropertyGraph};
use whyquery::server::{Server, ServerConfig};
use whyquery::session::Database;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("whyqd: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!(
                "  whyqd [--addr HOST:PORT] (--graph FILE | --generate <ldbc|dbpedia> \
                 [--scale N] [--seed S])"
            );
            eprintln!(
                "        [--threads N] [--queue-depth N] [--batch-window-us U] \
                 [--max-rows N] [--drain-ms D]"
            );
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: {s:?}"))
}

fn load_graph(args: &[String]) -> Result<PropertyGraph, String> {
    if let Some(path) = flag_value(args, "--graph") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?;
        return io::read_graph(&text).map_err(|e| format!("parsing {path:?}: {e}"));
    }
    if let Some(kind) = flag_value(args, "--generate") {
        let seed: u64 = match flag_value(args, "--seed") {
            Some(s) => parse_num(s, "seed")?,
            None => 42,
        };
        return match kind {
            "ldbc" => {
                let persons: usize = match flag_value(args, "--scale") {
                    Some(s) => parse_num(s, "scale")?,
                    None => 300,
                };
                Ok(ldbc_graph(LdbcConfig { persons, seed }))
            }
            "dbpedia" => {
                let entities: usize = match flag_value(args, "--scale") {
                    Some(s) => parse_num(s, "scale")?,
                    None => 2000,
                };
                Ok(dbpedia_graph(DbpediaConfig { entities, seed }))
            }
            other => Err(format!("unknown generator {other:?}")),
        };
    }
    Err("need --graph FILE or --generate <ldbc|dbpedia>".into())
}

fn build_config(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    if let Some(addr) = flag_value(args, "--addr") {
        config.addr = addr.to_string();
    }
    if let Some(s) = flag_value(args, "--threads") {
        config.threads = parse_num(s, "threads")?;
    }
    if let Some(s) = flag_value(args, "--queue-depth") {
        config.max_queue_depth = parse_num(s, "queue depth")?;
    }
    if let Some(s) = flag_value(args, "--batch-window-us") {
        config.batch_window = Duration::from_micros(parse_num(s, "batch window")?);
    }
    if let Some(s) = flag_value(args, "--max-rows") {
        config.max_rows = parse_num(s, "row cap")?;
    }
    if let Some(s) = flag_value(args, "--drain-ms") {
        config.drain_deadline = Duration::from_millis(parse_num(s, "drain deadline")?);
    }
    Ok(config)
}

fn run(args: &[String]) -> Result<(), String> {
    let graph = load_graph(args)?;
    let config = build_config(args)?;
    let db = Arc::new(Database::open(graph).map_err(|e| e.to_string())?);
    eprintln!(
        "whyqd: serving {} vertices / {} edges",
        db.graph().num_vertices(),
        db.graph().num_edges()
    );
    let server = Server::start(db, config).map_err(|e| format!("bind: {e}"))?;
    // scripts parse this exact line to learn the (possibly ephemeral) port
    println!("listening {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    // runs until a client sends SHUTDOWN, then drains and stops
    server.join();
    eprintln!("whyqd: drained, exiting");
    Ok(())
}
