//! # whyquery — why-query support for graph databases
//!
//! Facade crate re-exporting the whole workspace: a property-graph store,
//! the `Database`/`Session`/`PreparedQuery` query facade, a
//! predicate-aware pattern matcher, explanation-comparison metrics and the
//! why-query engine (subgraph-based and modification-based explanations
//! for empty, too-few and too-many answers), seeded workload generators,
//! and the `whyqd` network serving layer (admission control,
//! same-signature batching, SLO budgets — see `docs/wire-protocol.md`).
//!
//! Reproduces *"Why-Query Support in Graph Databases"* (E. Vasilyeva,
//! TU Dresden, 2016). `ARCHITECTURE.md` at the repository root documents
//! the whole pipeline stage by stage (parse → analyze → lower → optimize
//! → bytecode → execute → relax loop), the crate map, and the
//! budget/termination semantics; `docs/plan-ir.md` specifies the plan IR
//! and bytecode instruction set.
//!
//! ## Quick start
//!
//! Build a graph, open it as a [`session::Database`] (which seals the
//! topology and builds the configured indexes), take a [`session::Session`]
//! and prepare queries — prepared queries compile once, cache their plans,
//! and expose eager (`find`/`count`) and lazy (`stream`) execution:
//!
//! ```
//! use whyquery::prelude::*;
//!
//! // a tiny data graph
//! let mut g = PropertyGraph::new();
//! let anna = g.add_vertex([("type", Value::str("person")), ("name", Value::str("Anna"))]);
//! let tud = g.add_vertex([("type", Value::str("university"))]);
//! g.add_edge(anna, tud, "workAt", [("sinceYear", Value::Int(2003))]);
//!
//! let db = Database::open(g)?;
//! let session = db.session();
//!
//! // a pattern query that can never match (wrong year)
//! let q = QueryBuilder::new("who-works-since-2005")
//!     .vertex("p", [Predicate::eq("type", "person")])
//!     .vertex("u", [Predicate::eq("type", "university")])
//!     .edge_full("p", "u", "workAt", DirectionSet::FORWARD,
//!                [Predicate::eq("sinceYear", 2005)])
//!     .build();
//!
//! let prepared = session.prepare(&q)?;
//! assert_eq!(prepared.count()?, 0);
//! assert!(prepared.stream().next().is_none()); // lazy: no result set built
//!
//! // ask the why-query engine what went wrong
//! let engine = WhyEngine::new(&db);
//! let explanation = engine.why_empty(&q)?;
//! assert!(explanation.differential.edge_ids().count() > 0);
//! # Ok::<(), WhyqError>(())
//! ```

// The whole workspace is unsafe-free (audited 2026-08): lock it in.
#![forbid(unsafe_code)]

pub use whyq_core as core;
pub use whyq_datagen as datagen;
pub use whyq_graph as graph;
pub use whyq_matcher as matcher;
pub use whyq_metrics as metrics;
pub use whyq_query as query;
pub use whyq_server as server;
pub use whyq_session as session;

/// Convenience imports covering the common API surface.
///
/// The deprecated `find_matches`/`count_matches` shims are no longer
/// re-exported here: the facade (`Database::open` → `session.prepare(&q)`)
/// is the supported path, and the parallel entry points
/// (`prepared.find_par()`/`count_par()`, [`whyq_session::Executor`]) only
/// exist on it. Downstream code still on the shims can import them from
/// `whyquery::matcher` explicitly (with deprecation warnings) until they
/// are removed.
pub mod prelude {
    pub use whyq_core::engine::WhyEngine;
    pub use whyq_core::problem::{CardinalityGoal, WhyProblem};
    pub use whyq_graph::{PropertyGraph, Value};
    pub use whyq_matcher::MatchOptions;
    pub use whyq_query::{
        DirectionSet, GraphMod, Interval, PatternQuery, Predicate, QueryBuilder, Target,
    };
    pub use whyq_session::{
        Database, DatabaseConfig, Executor, ParallelOpts, PreparedQuery, Session, WhyqError,
    };
}
